//! Chrome trace-event JSON: parsing, validation, and profile analysis.
//!
//! The read side of the flight recorder ([`timeline`](super::timeline)
//! is the write side): a dependency-free parser for the Chrome
//! trace-event format, a validator used by tests and CI smoke jobs, and
//! the analysis behind `paragraph profile` — per-stage self-time,
//! per-lane utilization, slowest slices, and timeline diffing.
//!
//! The format reference is the Trace Event Format spec (the
//! `chrome://tracing` / Perfetto interchange): an object with a
//! `traceEvents` array (or a bare array) of event objects carrying
//! `ph` (phase), `ts`/`dur` (microseconds), `pid`/`tid` lanes, and
//! free-form `args`. Unlike the flat JSONL parser in
//! [`summary`](super::summary), this one handles nested objects and
//! arrays, so it gets a small recursive-descent JSON parser of its own
//! (depth-capped — timelines can come from outside the process).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum JSON nesting depth accepted by the parser. Trace files are
/// at most ~4 levels deep; the cap keeps hostile input from recursing
/// the stack away.
const MAX_DEPTH: usize = 64;

/// Spans shorter than this (in µs) are still distinct from their
/// neighbors; used when deciding whether one slice nests in another.
const EPS_US: f64 = 1e-9;

/// A parsed JSON value. Only what trace files need — numbers are `f64`,
/// objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("json: {what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.err("truncated \\u escape"));
        };
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid utf-8 in \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00))
                                } else {
                                    0xfffd
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape '\\{}'", other as char))),
                    }
                }
                _ => {
                    // Re-borrow the full char (the input is valid UTF-8).
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one complete JSON document (used for trace files and for the
/// bench-log rows in `profile --bench-compare`).
///
/// # Errors
///
/// Returns a message with the failing byte offset on malformed input.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser::new(text);
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after document"));
    }
    Ok(value)
}

/// One Chrome trace event, flattened to the fields the profiler uses.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Display name (for recorder output: the label, or the category).
    pub name: String,
    /// Category (for recorder output: the static event name).
    pub cat: String,
    /// Phase: `X` complete, `i`/`I` instant, `s`/`f` flow, `C` counter,
    /// `M` metadata, `B`/`E` begin/end.
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: f64,
    /// Process lane.
    pub pid: i64,
    /// Thread lane.
    pub tid: i64,
    /// Flow/async identity, when present.
    pub id: Option<i64>,
    /// `args` payload, numeric members only (others are dropped).
    pub args: BTreeMap<String, f64>,
    /// `args.name`, kept for metadata events (thread names).
    pub arg_name: Option<String>,
}

fn event_from_json(value: &JsonValue, index: usize) -> Result<TraceEvent, String> {
    let obj = match value {
        JsonValue::Obj(_) => value,
        _ => return Err(format!("event {index}: not an object")),
    };
    let ph = obj
        .get("ph")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("event {index}: missing \"ph\""))?
        .to_owned();
    let name = obj
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("event {index}: missing \"name\""))?
        .to_owned();
    let ts_us = obj.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0);
    if ph != "M" && obj.get("ts").is_none() {
        return Err(format!("event {index} ({name}): missing \"ts\""));
    }
    let dur_us = obj.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0);
    if ph == "X" && obj.get("dur").is_none() {
        return Err(format!(
            "event {index} ({name}): complete event missing \"dur\""
        ));
    }
    if ts_us < 0.0 || dur_us < 0.0 {
        return Err(format!("event {index} ({name}): negative ts/dur"));
    }
    let mut args = BTreeMap::new();
    let mut arg_name = None;
    if let Some(JsonValue::Obj(members)) = obj.get("args") {
        for (key, member) in members {
            match member {
                JsonValue::Num(n) => {
                    args.insert(key.clone(), *n);
                }
                JsonValue::Str(s) if key == "name" => arg_name = Some(s.clone()),
                _ => {}
            }
        }
    }
    Ok(TraceEvent {
        name,
        cat: obj
            .get("cat")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_owned(),
        ph,
        ts_us,
        dur_us,
        pid: obj.get("pid").and_then(JsonValue::as_f64).unwrap_or(0.0) as i64,
        tid: obj.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as i64,
        id: obj.get("id").and_then(JsonValue::as_f64).map(|n| n as i64),
        args,
        arg_name,
    })
}

/// Parses a Chrome trace-event file: either the object form
/// (`{"traceEvents": [...]}`) or a bare event array.
///
/// # Errors
///
/// Returns a message naming the offending byte or event on input that is
/// not valid trace-event JSON.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let doc = parse_json(text)?;
    let events = match &doc {
        JsonValue::Arr(items) => items,
        JsonValue::Obj(_) => match doc.get("traceEvents") {
            Some(JsonValue::Arr(items)) => items,
            Some(_) => return Err("\"traceEvents\" is not an array".to_owned()),
            None => return Err("missing \"traceEvents\" array".to_owned()),
        },
        _ => return Err("trace document is neither object nor array".to_owned()),
    };
    events
        .iter()
        .enumerate()
        .map(|(i, e)| event_from_json(e, i))
        .collect()
}

/// Validates `text` as Chrome trace-event JSON and returns the event
/// count — the check behind `paragraph profile` and the CI smoke job.
///
/// # Errors
///
/// Returns the parse or structural error for anything Perfetto would
/// reject (unknown phase, missing `ts`/`dur`, non-object events).
pub fn validate(text: &str) -> Result<usize, String> {
    let events = parse_chrome_trace(text)?;
    for (i, event) in events.iter().enumerate() {
        match event.ph.as_str() {
            "X" | "B" | "E" | "i" | "I" | "s" | "t" | "f" | "C" | "M" | "b" | "e" | "n" => {}
            other => {
                return Err(format!(
                    "event {i} ({}): unknown phase {other:?}",
                    event.name
                ))
            }
        }
        if (event.ph == "s" || event.ph == "f") && event.id.is_none() {
            return Err(format!(
                "event {i} ({}): flow event missing \"id\"",
                event.name
            ));
        }
    }
    Ok(events.len())
}

/// Per-stage aggregate (stages are event categories).
#[derive(Debug, Clone, Default)]
pub struct StageRow {
    /// Number of slices.
    pub slices: u64,
    /// Sum of slice durations, µs.
    pub total_us: f64,
    /// Total minus time spent in nested child slices, µs.
    pub self_us: f64,
    /// Longest single slice, µs.
    pub max_us: f64,
}

/// Per-lane (thread) aggregate.
#[derive(Debug, Clone, Default)]
pub struct LaneRow {
    /// Lane display name from `thread_name` metadata.
    pub name: String,
    /// Sum of top-level (non-nested) slice durations, µs.
    pub busy_us: f64,
    /// Slices recorded on this lane.
    pub slices: u64,
}

/// One complete slice, for the top-N table.
#[derive(Debug, Clone)]
pub struct SliceRow {
    /// Display name.
    pub name: String,
    /// Stage (category).
    pub cat: String,
    /// Lane.
    pub tid: i64,
    /// Start, µs.
    pub ts_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
}

/// Everything `paragraph profile` prints, precomputed.
#[derive(Debug, Clone, Default)]
pub struct ProfileSummary {
    /// Total parsed events (including metadata).
    pub events: usize,
    /// Wall-clock extent: last slice end minus first event start, µs.
    pub wall_us: f64,
    /// Stage → aggregate, keyed by category (name when no category).
    pub stages: BTreeMap<String, StageRow>,
    /// Lane id → aggregate.
    pub lanes: BTreeMap<i64, LaneRow>,
    /// Instant-event counts by name.
    pub instants: BTreeMap<String, u64>,
    /// Counter name → (last sample, maximum sample).
    pub counters: BTreeMap<String, (f64, f64)>,
    /// Flow arrows (start/finish pairs counted once by start).
    pub flows: u64,
    /// Ring-buffer drops reported by `timeline.dropped` markers.
    pub dropped: u64,
    /// All slices, longest first.
    pub slowest: Vec<SliceRow>,
}

/// Aggregates parsed events into a [`ProfileSummary`]. Self-time uses a
/// per-lane stack sweep: each slice's duration is subtracted from its
/// immediate enclosing slice on the same lane.
pub fn summarize(events: &[TraceEvent]) -> ProfileSummary {
    let mut summary = ProfileSummary {
        events: events.len(),
        ..ProfileSummary::default()
    };
    let mut min_ts = f64::INFINITY;
    let mut max_end = f64::NEG_INFINITY;

    // Lane names from metadata; instants, counters, flows in one pass.
    let mut by_tid: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        match event.ph.as_str() {
            "M" => {
                if event.name == "thread_name" {
                    if let Some(name) = &event.arg_name {
                        summary.lanes.entry(event.tid).or_default().name = name.clone();
                    }
                }
                continue;
            }
            "X" => {
                by_tid.entry(event.tid).or_default().push(i);
            }
            "i" | "I" | "n" => {
                if event.name == "timeline.dropped" {
                    summary.dropped +=
                        event.args.get("dropped").copied().unwrap_or(0.0).max(0.0) as u64;
                } else {
                    *summary.instants.entry(event.name.clone()).or_insert(0) += 1;
                }
            }
            "s" => summary.flows += 1,
            "C" => {
                let value = event.args.get("value").copied().unwrap_or(0.0);
                let entry = summary
                    .counters
                    .entry(event.name.clone())
                    .or_insert((0.0, 0.0));
                entry.0 = value;
                entry.1 = entry.1.max(value);
            }
            _ => {}
        }
        min_ts = min_ts.min(event.ts_us);
        max_end = max_end.max(event.ts_us + event.dur_us);
    }

    // Per-lane nesting sweep for self-time and top-level busy time.
    for (tid, mut indices) in by_tid {
        indices.sort_by(|&a, &b| {
            events[a]
                .ts_us
                .partial_cmp(&events[b].ts_us)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    events[b]
                        .dur_us
                        .partial_cmp(&events[a].dur_us)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        let lane = summary.lanes.entry(tid).or_default();
        // (end_us, index into `self_us`) for open ancestors.
        let mut stack: Vec<(f64, usize)> = Vec::new();
        let mut self_us: Vec<f64> = Vec::with_capacity(indices.len());
        for (local, &i) in indices.iter().enumerate() {
            let event = &events[i];
            while let Some(&(end, _)) = stack.last() {
                if end <= event.ts_us + EPS_US {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, parent)) = stack.last() {
                self_us[parent] -= event.dur_us;
            } else {
                lane.busy_us += event.dur_us;
            }
            lane.slices += 1;
            self_us.push(event.dur_us);
            stack.push((event.ts_us + event.dur_us, local));
        }
        for (local, &i) in indices.iter().enumerate() {
            let event = &events[i];
            let stage = if event.cat.is_empty() {
                event.name.clone()
            } else {
                event.cat.clone()
            };
            let row = summary.stages.entry(stage).or_default();
            row.slices += 1;
            row.total_us += event.dur_us;
            row.self_us += self_us[local].max(0.0);
            row.max_us = row.max_us.max(event.dur_us);
            summary.slowest.push(SliceRow {
                name: event.name.clone(),
                cat: event.cat.clone(),
                tid,
                ts_us: event.ts_us,
                dur_us: event.dur_us,
            });
        }
    }
    summary.slowest.sort_by(|a, b| {
        b.dur_us
            .partial_cmp(&a.dur_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.ts_us
                    .partial_cmp(&b.ts_us)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    if min_ts.is_finite() && max_end.is_finite() && max_end > min_ts {
        summary.wall_us = max_end - min_ts;
    }
    summary
}

/// Human-readable duration from microseconds.
pub fn fmt_us(us: f64) -> String {
    let abs = us.abs();
    if abs >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if abs >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.0}us")
    }
}

fn signed_us(us: f64) -> String {
    if us >= 0.0 {
        format!("+{}", fmt_us(us))
    } else {
        format!("-{}", fmt_us(-us))
    }
}

/// Renders the `paragraph profile` report: per-stage self-time table,
/// lane utilization, slowest slices, instants and final counters.
pub fn render_profile(summary: &ProfileSummary, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: {} events, {} lanes, wall {}",
        summary.events,
        summary.lanes.len(),
        fmt_us(summary.wall_us),
    );
    if summary.dropped > 0 {
        let _ = writeln!(
            out,
            "warning: {} events dropped by ring wrap",
            summary.dropped
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<24} {:>7} {:>10} {:>10} {:>10} {:>7}",
        "stage", "slices", "total", "self", "max", "%wall"
    );
    let mut stages: Vec<(&String, &StageRow)> = summary.stages.iter().collect();
    stages.sort_by(|a, b| {
        b.1.self_us
            .partial_cmp(&a.1.self_us)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (stage, row) in stages {
        let pct = if summary.wall_us > 0.0 {
            100.0 * row.self_us / summary.wall_us
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{stage:<24} {:>7} {:>10} {:>10} {:>10} {pct:>6.1}%",
            row.slices,
            fmt_us(row.total_us),
            fmt_us(row.self_us),
            fmt_us(row.max_us),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "lanes:");
    for (tid, lane) in &summary.lanes {
        let pct = if summary.wall_us > 0.0 {
            100.0 * lane.busy_us / summary.wall_us
        } else {
            0.0
        };
        let name = if lane.name.is_empty() {
            format!("tid-{tid}")
        } else {
            lane.name.clone()
        };
        let _ = writeln!(
            out,
            "  {name:<20} {:>10} busy  {pct:>5.1}%  {} slices",
            fmt_us(lane.busy_us),
            lane.slices,
        );
    }
    if !summary.slowest.is_empty() && top_n > 0 {
        let _ = writeln!(out);
        let _ = writeln!(out, "slowest slices:");
        for slice in summary.slowest.iter().take(top_n) {
            let _ = writeln!(
                out,
                "  {:<28} {:>10}  (tid {}, ts {})",
                slice.name,
                fmt_us(slice.dur_us),
                slice.tid,
                fmt_us(slice.ts_us),
            );
        }
    }
    if !summary.instants.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "instants:");
        for (name, count) in &summary.instants {
            let _ = writeln!(out, "  {name:<28} {count}");
        }
    }
    if summary.flows > 0 {
        let _ = writeln!(out, "flows: {}", summary.flows);
    }
    if !summary.counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "counters (final / peak):");
        for (name, (last, peak)) in &summary.counters {
            let _ = writeln!(out, "  {name:<28} {last:.0} / {peak:.0}");
        }
    }
    out
}

/// Renders a stage-by-stage diff of two summaries (`a` the baseline,
/// `b` the candidate) for regression hunting.
pub fn render_diff(a: &ProfileSummary, b: &ProfileSummary) -> String {
    let mut out = String::new();
    let wall_delta = if a.wall_us > 0.0 {
        100.0 * (b.wall_us - a.wall_us) / a.wall_us
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "timeline diff: wall {} -> {} ({wall_delta:+.1}%)",
        fmt_us(a.wall_us),
        fmt_us(b.wall_us),
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>10} {:>10} {:>7}",
        "stage", "self A", "self B", "delta", "ratio"
    );
    let mut names: Vec<&String> = a.stages.keys().chain(b.stages.keys()).collect();
    names.sort();
    names.dedup();
    let mut rows: Vec<(&String, f64, f64)> = names
        .into_iter()
        .map(|name| {
            let sa = a.stages.get(name).map_or(0.0, |r| r.self_us);
            let sb = b.stages.get(name).map_or(0.0, |r| r.self_us);
            (name, sa, sb)
        })
        .collect();
    rows.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .partial_cmp(&(x.2 - x.1).abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (name, sa, sb) in rows {
        let ratio = if sa > 0.0 {
            format!("{:.2}x", sb / sa)
        } else {
            "-".to_owned()
        };
        let _ = writeln!(
            out,
            "{name:<24} {:>10} {:>10} {:>10} {ratio:>7}",
            fmt_us(sa),
            fmt_us(sb),
            signed_us(sb - sa),
        );
    }
    out
}

/// Canonicalizes a timeline for cross-run comparison: drops metadata and
/// all timing/lane identity (`ts`, `dur`, `tid`, `pid`), reduces each
/// counter series to its peak value, and sorts the remaining event
/// descriptors. Two runs of the same work — regardless of `--jobs`,
/// scheduling, or wall time — normalize to the same list.
///
/// # Errors
///
/// Propagates parse errors from [`parse_chrome_trace`].
pub fn normalized_events(text: &str) -> Result<Vec<String>, String> {
    let events = parse_chrome_trace(text)?;
    let mut lines = Vec::new();
    let mut counters: BTreeMap<String, f64> = BTreeMap::new();
    for event in &events {
        match event.ph.as_str() {
            "M" => continue,
            "C" => {
                let value = event.args.get("value").copied().unwrap_or(0.0);
                let entry = counters.entry(event.name.clone()).or_insert(f64::MIN);
                *entry = entry.max(value);
                continue;
            }
            _ => {}
        }
        if event.name == "timeline.dropped" {
            return Err("timeline dropped events; raise the lane capacity".to_owned());
        }
        let args: Vec<String> = event
            .args
            .iter()
            .map(|(k, v)| format!("{k}={v:.0}"))
            .collect();
        let id = event.id.map(|id| format!(" id={id}")).unwrap_or_default();
        lines.push(format!(
            "{}|{}|{}{id}|{}",
            event.ph,
            event.cat,
            event.name,
            args.join(","),
        ));
    }
    for (name, peak) in counters {
        lines.push(format!("C|{name}|peak={peak:.0}"));
    }
    lines.sort();
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"traceEvents":[
        {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"paragraph"}},
        {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"main"}},
        {"name":"analyze","cat":"analyze","ph":"X","ts":0.0,"dur":100.0,"pid":1,"tid":0,"args":{}},
        {"name":"decode","cat":"decode","ph":"X","ts":10.0,"dur":40.0,"pid":1,"tid":0,"args":{"records":64}},
        {"name":"save","cat":"checkpoint","ph":"i","s":"t","ts":60.0,"pid":1,"tid":0,"args":{}},
        {"name":"retry","ph":"s","id":7,"ts":70.0,"pid":1,"tid":0,"args":{}},
        {"name":"retry","ph":"f","bp":"e","id":7,"ts":80.0,"pid":1,"tid":0,"args":{}},
        {"name":"arena.hits","ph":"C","ts":90.0,"pid":1,"tid":0,"args":{"value":3}}
    ]}"#;

    #[test]
    fn parses_object_and_array_forms() {
        let events = parse_chrome_trace(SAMPLE).expect("object form parses");
        assert_eq!(events.len(), 8);
        let bare = r#"[{"name":"a","ph":"i","ts":1.5,"pid":1,"tid":0}]"#;
        let events = parse_chrome_trace(bare).expect("bare array parses");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ts_us, 1.5);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"a":[1,-2.5,"xA\n"],"b":{"c":null,"d":true}}"#)
            .expect("document parses");
        assert_eq!(
            doc.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(-2.5),
                JsonValue::Str("xA\n".to_owned()),
            ]))
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")),
            Some(&JsonValue::Null)
        );
    }

    #[test]
    fn validate_rejects_malformed_input() {
        assert!(validate("not json").is_err());
        assert!(validate(r#"{"traceEvents": 5}"#).is_err());
        assert!(
            validate(r#"[{"ph":"X","name":"a","ts":0}]"#).is_err(),
            "X without dur"
        );
        assert!(
            validate(r#"[{"ph":"??","name":"a","ts":0}]"#).is_err(),
            "unknown phase"
        );
        assert!(
            validate(r#"[{"ph":"s","name":"a","ts":0}]"#).is_err(),
            "flow without id"
        );
        assert_eq!(validate(SAMPLE), Ok(8));
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse_json(&deep).is_err());
    }

    #[test]
    fn self_time_subtracts_nested_children() {
        let events = parse_chrome_trace(SAMPLE).expect("sample parses");
        let summary = summarize(&events);
        let analyze = &summary.stages["analyze"];
        assert_eq!(analyze.slices, 1);
        assert!((analyze.total_us - 100.0).abs() < 1e-9);
        assert!(
            (analyze.self_us - 60.0).abs() < 1e-9,
            "100us minus the 40us nested decode, got {}",
            analyze.self_us
        );
        let decode = &summary.stages["decode"];
        assert!((decode.self_us - 40.0).abs() < 1e-9);
        // Lane busy time counts only the top-level slice.
        assert!((summary.lanes[&0].busy_us - 100.0).abs() < 1e-9);
        assert_eq!(summary.lanes[&0].name, "main");
        assert_eq!(summary.instants.get("save"), Some(&1));
        assert_eq!(summary.flows, 1);
        assert_eq!(summary.counters.get("arena.hits"), Some(&(3.0, 3.0)));
        assert_eq!(summary.slowest[0].name, "analyze");
    }

    #[test]
    fn profile_and_diff_render() {
        let events = parse_chrome_trace(SAMPLE).expect("sample parses");
        let summary = summarize(&events);
        let report = render_profile(&summary, 5);
        assert!(report.contains("stage"));
        assert!(report.contains("analyze"));
        assert!(report.contains("slowest slices:"));
        let diff = render_diff(&summary, &summary);
        assert!(diff.contains("1.00x"));
    }

    #[test]
    fn normalization_erases_time_and_lanes_but_not_work() {
        let a = r#"[{"name":"cell","cat":"sweep.cell","ph":"X","ts":0,"dur":5,"pid":1,"tid":3,"args":{"records":7}},
                    {"name":"hits","ph":"C","ts":1,"pid":1,"tid":3,"args":{"value":1}},
                    {"name":"hits","ph":"C","ts":2,"pid":1,"tid":3,"args":{"value":2}}]"#;
        let b = r#"[{"name":"hits","ph":"C","ts":9,"pid":1,"tid":0,"args":{"value":2}},
                    {"name":"cell","cat":"sweep.cell","ph":"X","ts":100,"dur":50,"pid":1,"tid":0,"args":{"records":7}},
                    {"name":"hits","ph":"C","ts":4,"pid":1,"tid":0,"args":{"value":1}}]"#;
        let na = normalized_events(a).expect("a normalizes");
        let nb = normalized_events(b).expect("b normalizes");
        assert_eq!(na, nb);
        let c = r#"[{"name":"cell","cat":"sweep.cell","ph":"X","ts":0,"dur":5,"pid":1,"tid":3,"args":{"records":8}}]"#;
        assert_ne!(na, normalized_events(c).expect("c normalizes"));
    }

    #[test]
    fn fmt_us_picks_sensible_units() {
        assert_eq!(fmt_us(12.0), "12us");
        assert_eq!(fmt_us(12_345.0), "12.3ms");
        assert_eq!(fmt_us(2_500_000.0), "2.50s");
    }
}

//! The *paragraph-telemetry* layer: structured events, per-stage metrics,
//! and live progress for the streaming analysis pipeline.
//!
//! The live-well algorithm is a single pass over hundreds of millions of
//! dynamic instructions; without instrumentation the pipeline (trace decode
//! → placement → window/firewall accounting → report) is a black box until
//! the final report prints. This module provides the measurement substrate:
//!
//! * **Metric primitives** — [`Counter`], [`Gauge`], [`Histogram`] — are
//!   lock-free atomics. Counters and histogram cells *saturate* instead of
//!   wrapping, and every primitive supports lossless [`merge`](Counter::merge)
//!   so per-shard metrics can be combined.
//! * **A [`Registry`]** names metrics, aggregates span timings, and owns an
//!   optional JSONL event sink. A process-wide registry backs the macros;
//!   unit tests construct private registries.
//! * **Macros** — [`counter!`](crate::counter), [`gauge!`](crate::gauge),
//!   [`histogram!`](crate::histogram), [`span!`](crate::span) — are safe to
//!   leave in hot loops. With the `telemetry` cargo feature disabled they
//!   compile to nothing; with the feature on but telemetry not enabled at
//!   runtime they cost two relaxed atomic loads and a branch.
//! * **Sinks** — a JSONL structured event log ([`Registry::set_event_sink`]),
//!   a Prometheus text snapshot ([`prom`]), and a human stderr heartbeat
//!   ([`progress`]). [`summary`] parses a JSONL log back into a per-stage
//!   time/throughput table (the `paragraph stats --telemetry` view).
//! * **The flight recorder** — [`timeline`] keeps a bounded, per-thread
//!   ring of span/instant/flow/counter events and exports Chrome
//!   trace-event JSON for Perfetto (`--timeline-out`); [`tracefmt`]
//!   parses it back and computes the `paragraph profile` attribution
//!   (per-stage self-time, lane utilization, slowest slices, diffs).
//!
//! # Examples
//!
//! ```
//! use paragraph_core::telemetry::Registry;
//!
//! let registry = Registry::new();
//! registry.enable();
//! registry.counter("decode.records").add(4096);
//! registry.histogram("livewell.occupancy").observe(12_000);
//! {
//!     let _guard = registry.span("decode");
//!     // ... timed work ...
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["decode.records"], 4096);
//! assert_eq!(snapshot.spans["decode"].count, 1);
//! ```

pub mod progress;
pub mod prom;
pub mod summary;
pub mod timeline;
pub mod tracefmt;

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// A monotonically increasing event count.
///
/// Additions saturate at `u64::MAX` rather than wrapping, so a counter that
/// overflows pins at the maximum instead of silently restarting — an
/// impossible-to-misread signal in a dashboard.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        saturating_fetch_add(&self.value, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Folds another counter into this one (saturating).
    pub fn merge(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A last-write-wins instantaneous value (occupancy, floor level, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: one for zero plus one per power of
/// two up to `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds exact zeros; bucket `i` (for `i >= 1`) holds values in
/// `[2^(i-1), 2^i)`. Cells, the total count, and the running sum all
/// saturate instead of wrapping, and two histograms with the same bucketing
/// merge losslessly — the semantics exercised by the overflow/merge tests.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of `value`: 0 for 0, else `floor(log2(value)) + 1`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        saturating_fetch_add(&self.buckets[bucket_index(value)], 1);
        saturating_fetch_add(&self.count, 1);
        saturating_fetch_add(&self.sum, value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds another histogram into this one, cell by cell (saturating).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            saturating_fetch_add(mine, theirs.load(Ordering::Relaxed));
        }
        saturating_fetch_add(&self.count, other.count());
        saturating_fetch_add(&self.sum, other.sum());
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Saturating atomic add (relaxed; telemetry tolerates torn interleavings).
fn saturating_fetch_add(cell: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(n);
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// Frozen cells of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram`] for the bucketing).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper bound (inclusive) of bucket `i`: 0 for bucket 0, else `2^i - 1`.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Approximate quantile (`q` in `[0,1]`): the upper bound of the bucket
    /// containing the `q`-th observation. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(HistogramSnapshot::bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Mean observation (0 when empty). An approximation once `sum` has
    /// saturated.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregated timings of one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed executions of the span.
    pub count: u64,
    /// Total nanoseconds across executions (saturating).
    pub total_ns: u64,
    /// Longest single execution in nanoseconds.
    pub max_ns: u64,
}

/// A typed value carried by a structured event field.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (serialized with six decimal places).
    F64(f64),
    /// String (JSON-escaped on write).
    Str(&'a str),
}

fn write_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn append_field(out: &mut String, key: &str, value: Value<'_>) {
    out.push_str(",\"");
    write_json_escaped(out, key);
    out.push_str("\":");
    match value {
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                out.push_str(&format!("{v:.6}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => {
            out.push('"');
            write_json_escaped(out, s);
            out.push('"');
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    spans: BTreeMap<&'static str, SpanStat>,
    sink: Option<Box<dyn Write + Send>>,
    sink_failed: bool,
}

/// A named-metric registry with an optional structured event sink.
///
/// One process-wide registry ([`global`]) backs the macros; libraries that
/// want isolation (tests, embedders) construct their own and thread it
/// explicitly. All operations are `&self`; the registry is `Sync`.
pub struct Registry {
    start: Instant,
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, disabled registry.
    pub fn new() -> Registry {
        Registry {
            start: Instant::now(),
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned telemetry mutex must never take the analysis down:
        // recover the inner state and keep going.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Turns collection on. Metrics and spans recorded while disabled are
    /// dropped at the macro layer but accepted through direct handles.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns collection off (the macro fast path).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether collection is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the registry was created (the event timebase).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.lock().counters.entry(name).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.lock().gauges.entry(name).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.lock().histograms.entry(name).or_default())
    }

    /// Installs the JSONL structured event sink (e.g. a `BufWriter` over
    /// `--telemetry-out`). Write failures disable the sink after the first
    /// error; telemetry never takes the analysis down.
    pub fn set_event_sink(&self, sink: Box<dyn Write + Send>) {
        let mut inner = self.lock();
        inner.sink = Some(sink);
        inner.sink_failed = false;
    }

    /// Flushes the event sink, reporting the first failure — including a
    /// mid-run write error that disabled the sink (the log on disk is
    /// incomplete, and whoever owns the artifact should fail it).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error, or reports a sink disabled by
    /// an earlier write failure.
    pub fn flush_sink(&self) -> std::io::Result<()> {
        let mut inner = self.lock();
        if inner.sink_failed {
            return Err(std::io::Error::other(
                "event sink disabled after a write failure; the log is incomplete",
            ));
        }
        match inner.sink.as_mut() {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }

    /// Emits one structured event line (`{"ts_ns":..,"event":..,...fields}`)
    /// to the sink, if one is installed. Events are flat: scalar fields
    /// only, which keeps the log greppable and the parser trivial.
    pub fn emit(&self, event: &str, fields: &[(&str, Value<'_>)]) {
        let ts = self.elapsed_ns();
        let mut line = String::with_capacity(64 + 24 * fields.len());
        line.push_str(&format!("{{\"ts_ns\":{ts},\"event\":\""));
        write_json_escaped(&mut line, event);
        line.push('"');
        for &(key, value) in fields {
            append_field(&mut line, key, value);
        }
        line.push_str("}\n");
        let mut inner = self.lock();
        if inner.sink_failed {
            return;
        }
        if let Some(sink) = inner.sink.as_mut() {
            if sink.write_all(line.as_bytes()).is_err() {
                inner.sink_failed = true;
            }
        }
    }

    /// Starts a timed span; the guard records on drop. Inert when the
    /// registry is disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            registry: self.is_enabled().then_some(self),
            name,
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Records one completed execution of span `name` and emits a `span`
    /// event carrying the duration plus any `extra` fields.
    pub fn record_span(&self, name: &'static str, dur_ns: u64, extra: &[(&str, Value<'_>)]) {
        {
            let mut inner = self.lock();
            let stat = inner.spans.entry(name).or_default();
            stat.count = stat.count.saturating_add(1);
            stat.total_ns = stat.total_ns.saturating_add(dur_ns);
            stat.max_ns = stat.max_ns.max(dur_ns);
        }
        let mut fields: Vec<(&str, Value<'_>)> = Vec::with_capacity(2 + extra.len());
        fields.push(("name", Value::Str(name)));
        fields.push(("dur_ns", Value::U64(dur_ns)));
        fields.extend_from_slice(extra);
        self.emit("span", &fields);
    }

    /// Emits every counter, gauge and span aggregate as `counter`/`gauge`/
    /// `span_total` events — the closing dump of a JSONL log.
    pub fn emit_final_dump(&self) {
        let snapshot = self.snapshot();
        for (name, value) in &snapshot.counters {
            self.emit(
                "counter",
                &[("name", Value::Str(name)), ("value", Value::U64(*value))],
            );
        }
        for (name, value) in &snapshot.gauges {
            self.emit(
                "gauge",
                &[("name", Value::Str(name)), ("value", Value::I64(*value))],
            );
        }
        for (name, stat) in &snapshot.spans {
            self.emit(
                "span_total",
                &[
                    ("name", Value::Str(name)),
                    ("count", Value::U64(stat.count)),
                    ("total_ns", Value::U64(stat.total_ns)),
                    ("max_ns", Value::U64(stat.max_ns)),
                ],
            );
        }
        for (name, h) in &snapshot.histograms {
            self.emit(
                "histogram",
                &[
                    ("name", Value::Str(name)),
                    ("count", Value::U64(h.count)),
                    ("sum", Value::U64(h.sum)),
                    ("p50", Value::U64(h.quantile(0.5).unwrap_or(0))),
                    ("p99", Value::U64(h.quantile(0.99).unwrap_or(0))),
                ],
            );
        }
    }

    /// A point-in-time copy of every metric and span aggregate.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            elapsed_ns: self.elapsed_ns(),
            counters: inner
                .counters
                .iter()
                .map(|(&k, v)| (k.to_owned(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&k, v)| (k.to_owned(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_owned(), v.snapshot()))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
        }
    }
}

/// Frozen state of a [`Registry`] — what the Prometheus snapshot renders.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the registry was created.
    pub elapsed_ns: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram cells by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        prom::render(self)
    }
}

/// RAII timer for one span execution; records into its registry on drop.
///
/// Obtained from [`Registry::span`] or the [`span!`](crate::span) macro.
/// Extra `u64` fields attached with [`SpanGuard::field`] travel on the
/// emitted `span` event (e.g. records decoded inside the span).
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: Option<&'a Registry>,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, u64)>,
}

impl SpanGuard<'_> {
    /// Attaches an extra field to the span's completion event.
    pub fn field(&mut self, key: &'static str, value: u64) {
        if self.registry.is_some() {
            self.fields.push((key, value));
        }
    }

    /// Whether this guard will record anything (false when telemetry was
    /// disabled at creation).
    pub fn is_active(&self) -> bool {
        self.registry.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(registry) = self.registry else {
            return;
        };
        let dur = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let extra: Vec<(&str, Value<'_>)> = self
            .fields
            .iter()
            .map(|&(k, v)| (k, Value::U64(v)))
            .collect();
        registry.record_span(self.name, dur, &extra);
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry backing the macros. Created disabled on first
/// use; call [`Registry::enable`] to start collecting.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// The global registry, only if it exists *and* is enabled — the macro fast
/// path (two relaxed loads). Compiled to a constant `None` when the
/// `telemetry` feature is off, which dead-code-eliminates every macro body.
#[inline]
pub fn active() -> Option<&'static Registry> {
    #[cfg(feature = "telemetry")]
    {
        let registry = GLOBAL.get()?;
        registry.is_enabled().then_some(registry)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        None
    }
}

/// Whether the global registry is collecting (false when compiled out).
#[inline]
pub fn enabled() -> bool {
    active().is_some()
}

/// Starts a span on the global registry (inert when telemetry is off).
#[inline]
pub fn global_span(name: &'static str) -> SpanGuard<'static> {
    match active() {
        Some(registry) => registry.span(name),
        None => SpanGuard {
            registry: None,
            name,
            start: Instant::now(),
            fields: Vec::new(),
        },
    }
}

/// Adds to a named counter on the global registry.
///
/// Safe in hot loops: when telemetry is compiled out or disabled this is a
/// constant branch; when enabled, the call site caches its counter handle in
/// a `OnceLock` so steady-state cost is one saturating atomic add.
#[macro_export]
macro_rules! counter {
    ($name:literal, $delta:expr) => {{
        if let Some(__registry) = $crate::telemetry::active() {
            static __SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::telemetry::Counter>> =
                ::std::sync::OnceLock::new();
            __SLOT.get_or_init(|| __registry.counter($name)).add($delta);
        }
    }};
}

/// Sets a named gauge on the global registry (see [`counter!`](crate::counter)
/// for the cost model).
#[macro_export]
macro_rules! gauge {
    ($name:literal, $value:expr) => {{
        if let Some(__registry) = $crate::telemetry::active() {
            static __SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::telemetry::Gauge>> =
                ::std::sync::OnceLock::new();
            __SLOT.get_or_init(|| __registry.gauge($name)).set($value);
        }
    }};
}

/// Records an observation in a named histogram on the global registry (see
/// [`counter!`](crate::counter) for the cost model).
#[macro_export]
macro_rules! histogram {
    ($name:literal, $value:expr) => {{
        if let Some(__registry) = $crate::telemetry::active() {
            static __SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::telemetry::Histogram>> =
                ::std::sync::OnceLock::new();
            __SLOT
                .get_or_init(|| __registry.histogram($name))
                .observe($value);
        }
    }};
}

/// Opens a timed span on the global registry; bind the result to keep it
/// alive for the region being timed:
///
/// ```
/// let _span = paragraph_core::span!("decode");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::telemetry::global_span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.add(1);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_merge_is_additive_and_saturating() {
        let a = Counter::new();
        let b = Counter::new();
        a.add(40);
        b.add(2);
        a.merge(&b);
        assert_eq!(a.get(), 42);
        b.add(u64::MAX - 2);
        a.merge(&b);
        assert_eq!(a.get(), u64::MAX);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_observe_and_quantiles() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.quantile(0.0), Some(0));
        // p99 lands in the bucket holding 1000: [512, 1024).
        assert_eq!(s.quantile(0.99), Some(1023));
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn histogram_overflow_saturates_count_sum_and_cells() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(s.buckets[64], 2);
    }

    #[test]
    fn histogram_merge_adds_cell_by_cell() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(1);
        a.observe(1000);
        b.observe(1);
        b.observe(0);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.sum, 1002);
        // Merging a saturated histogram saturates the target.
        let big = Histogram::new();
        big.observe(u64::MAX);
        a.merge(&big);
        assert_eq!(a.snapshot().sum, u64::MAX);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        assert_eq!(Histogram::new().snapshot().quantile(0.5), None);
    }

    #[test]
    fn registry_names_are_stable_handles() {
        let registry = Registry::new();
        registry.counter("x").add(1);
        registry.counter("x").add(2);
        assert_eq!(registry.counter("x").get(), 3);
        registry.gauge("g").set(-7);
        assert_eq!(registry.gauge("g").get(), -7);
    }

    #[test]
    fn spans_aggregate_and_emit_events() {
        let registry = Registry::new();
        registry.enable();
        let sink: Arc<Mutex<Vec<u8>>> = Arc::default();
        registry.set_event_sink(Box::new(SharedSink(Arc::clone(&sink))));
        {
            let mut guard = registry.span("stage");
            guard.field("records", 17);
        }
        {
            let _guard = registry.span("stage");
        }
        let snapshot = registry.snapshot();
        let stat = snapshot.spans["stage"];
        assert_eq!(stat.count, 2);
        assert!(stat.total_ns >= stat.max_ns);
        let log = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        assert_eq!(log.lines().count(), 2);
        assert!(log.contains("\"event\":\"span\""));
        assert!(log.contains("\"records\":17"));
    }

    #[test]
    fn disabled_registry_spans_are_inert() {
        let registry = Registry::new();
        {
            let guard = registry.span("nothing");
            assert!(!guard.is_active());
        }
        assert!(registry.snapshot().spans.is_empty());
    }

    #[test]
    fn events_are_one_json_object_per_line() {
        let registry = Registry::new();
        registry.enable();
        let sink: Arc<Mutex<Vec<u8>>> = Arc::default();
        registry.set_event_sink(Box::new(SharedSink(Arc::clone(&sink))));
        registry.emit(
            "run_start",
            &[
                ("command", Value::Str("analyze")),
                ("records", Value::U64(5)),
                ("rate", Value::F64(1.5)),
                ("floor", Value::I64(-1)),
                ("quote", Value::Str("a\"b\\c\nd")),
            ],
        );
        let log = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        let line = log.lines().next().unwrap();
        assert!(line.starts_with("{\"ts_ns\":"));
        assert!(line.contains("\"command\":\"analyze\""));
        assert!(line.contains("\"rate\":1.500000"));
        assert!(line.contains("\"floor\":-1"));
        assert!(line.contains("\\\"b\\\\c\\n"));
        // The parser in `summary` accepts what `emit` writes.
        let events = summary::parse_jsonl(&log).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, "run_start");
    }

    #[test]
    fn final_dump_covers_every_metric_kind() {
        let registry = Registry::new();
        registry.enable();
        let sink: Arc<Mutex<Vec<u8>>> = Arc::default();
        registry.set_event_sink(Box::new(SharedSink(Arc::clone(&sink))));
        registry.counter("c").add(1);
        registry.gauge("g").set(2);
        registry.histogram("h").observe(3);
        registry.record_span("s", 10, &[]);
        registry.emit_final_dump();
        let log = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        for needle in [
            "\"counter\"",
            "\"gauge\"",
            "\"histogram\"",
            "\"span_total\"",
        ] {
            assert!(log.contains(needle), "missing {needle} in {log}");
        }
    }

    #[test]
    fn macros_are_inert_without_an_enabled_global_registry() {
        // Never enabled in this test binary unless another test enabled it;
        // either way the macros must not panic, and with the registry
        // disabled they must record nothing new.
        global().disable();
        counter!("test.macro.counter", 1);
        gauge!("test.macro.gauge", 1);
        histogram!("test.macro.histogram", 1);
        let _span = span!("test.macro.span");
        assert!(!enabled());
    }

    #[test]
    fn macros_record_through_the_global_registry_when_enabled() {
        global().enable();
        counter!("test.macro.live_counter", 2);
        counter!("test.macro.live_counter", 3);
        histogram!("test.macro.live_hist", 9);
        {
            let _span = span!("test.macro.live_span");
        }
        global().disable();
        let snapshot = global().snapshot();
        assert_eq!(snapshot.counters["test.macro.live_counter"], 5);
        assert_eq!(snapshot.histograms["test.macro.live_hist"].count, 1);
        assert_eq!(snapshot.spans["test.macro.live_span"].count, 1);
    }

    /// Test sink sharing its buffer with the asserting test.
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}

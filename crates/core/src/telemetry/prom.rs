//! Prometheus text exposition rendering and validation.
//!
//! [`render`] serializes a [`MetricsSnapshot`] in the Prometheus text
//! format (version 0.0.4): counters and span totals as `counter` families,
//! gauges as `gauge` families, histograms as cumulative `_bucket`/`_sum`/
//! `_count` triples. [`validate`] is the inverse gate used by the CI smoke
//! job: it checks a rendered snapshot line by line without external crates.

use super::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Maps a registry metric name (`livewell.occupancy`) to a Prometheus
/// metric name (`paragraph_livewell_occupancy`).
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("paragraph_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let base = metric_name(name);
    let _ = writeln!(out, "# TYPE {base} histogram");
    let mut cumulative = 0u64;
    for (i, &cell) in h.buckets.iter().enumerate() {
        if cell == 0 {
            continue;
        }
        cumulative = cumulative.saturating_add(cell);
        let le = HistogramSnapshot::bucket_upper_bound(i);
        let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{base}_sum {}", h.sum);
    let _ = writeln!(out, "{base}_count {}", h.count);
    // Precomputed quantiles as a sibling gauge family (the classic
    // histogram family stays untouched for PromQL `histogram_quantile`;
    // these are the cheap scrape-side view). Upper-bound estimates from
    // the log2 buckets, monotone by construction.
    if h.count > 0 {
        let _ = writeln!(out, "# TYPE {base}_quantiles gauge");
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            if let Some(value) = h.quantile(q) {
                let _ = writeln!(out, "{base}_quantiles{{quantile=\"{label}\"}} {value}");
            }
        }
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        "# Paragraph metrics snapshot (elapsed_ns {})",
        snapshot.elapsed_ns
    );
    for (name, value) in &snapshot.counters {
        let base = metric_name(name);
        let _ = writeln!(out, "# TYPE {base} counter");
        let _ = writeln!(out, "{base} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let base = metric_name(name);
        let _ = writeln!(out, "# TYPE {base} gauge");
        let _ = writeln!(out, "{base} {value}");
    }
    for (name, stat) in &snapshot.spans {
        let base = metric_name(name);
        let _ = writeln!(out, "# TYPE {base}_seconds_total counter");
        let _ = writeln!(
            out,
            "{base}_seconds_total {:.9}",
            stat.total_ns as f64 / 1e9
        );
        let _ = writeln!(out, "# TYPE {base}_calls_total counter");
        let _ = writeln!(out, "{base}_calls_total {}", stat.count);
    }
    for (name, h) in &snapshot.histograms {
        render_histogram(&mut out, name, h);
    }
    out
}

/// Checks that `text` is well-formed Prometheus text exposition: every
/// non-comment line is `name[{labels}] value` with a valid metric name and
/// a numeric value. Returns the number of sample lines.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return Err(format!("line {}: no value separator", lineno + 1)),
        };
        let name = match name_part.split_once('{') {
            Some((bare, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {}: unterminated label set", lineno + 1));
                }
                // Quantile labels must be probabilities: the gauge family
                // rendered next to each histogram is only trustworthy if
                // `quantile="q"` parses and lands in [0, 1].
                if let Some(rest) = labels.strip_prefix("quantile=\"") {
                    let q = rest.split('"').next().unwrap_or("");
                    if !q.parse::<f64>().is_ok_and(|q| (0.0..=1.0).contains(&q)) {
                        return Err(format!("line {}: bad quantile label {q:?}", lineno + 1));
                    }
                }
                bare
            }
            None => name_part,
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if value_part.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value {value_part:?}", lineno + 1));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples found".to_owned());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::super::Registry;
    use super::*;

    #[test]
    fn names_are_sanitized_and_prefixed() {
        assert_eq!(metric_name("decode.records"), "paragraph_decode_records");
        assert_eq!(metric_name("a-b c"), "paragraph_a_b_c");
    }

    #[test]
    fn rendered_snapshot_validates() {
        let registry = Registry::new();
        registry.enable();
        registry.counter("decode.records").add(100);
        registry.gauge("livewell.floor").set(-3);
        registry.histogram("livewell.occupancy").observe(5);
        registry.histogram("livewell.occupancy").observe(5000);
        registry.record_span("analyze", 1_500_000, &[]);
        let text = registry.snapshot().to_prometheus();
        let samples = validate(&text).expect("rendered snapshot must validate");
        assert!(samples >= 6, "expected several samples, got {samples}");
        assert!(text.contains("paragraph_decode_records 100"));
        assert!(text.contains("paragraph_livewell_floor -3"));
        assert!(text.contains("paragraph_livewell_occupancy_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("paragraph_livewell_occupancy_count 2"));
        assert!(text.contains("paragraph_analyze_seconds_total 0.001500000"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let registry = Registry::new();
        let h = registry.histogram("h");
        h.observe(1);
        h.observe(2);
        h.observe(2);
        let text = registry.snapshot().to_prometheus();
        // Bucket le="1" holds the 1; le="3" accumulates the two 2s on top.
        assert!(text.contains("paragraph_h_bucket{le=\"1\"} 1"));
        assert!(text.contains("paragraph_h_bucket{le=\"3\"} 3"));
    }

    #[test]
    fn histogram_quantiles_are_exported_and_monotone() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        for v in [1u64, 2, 2, 3, 100, 4000] {
            h.observe(v);
        }
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE paragraph_lat_quantiles gauge"));
        let quantile = |label: &str| -> f64 {
            let needle = format!("paragraph_lat_quantiles{{quantile=\"{label}\"}} ");
            let line = text
                .lines()
                .find(|l| l.starts_with(&needle))
                .unwrap_or_else(|| panic!("missing quantile {label}"));
            line[needle.len()..].parse().expect("numeric quantile")
        };
        let (p50, p90, p99) = (quantile("0.5"), quantile("0.9"), quantile("0.99"));
        assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");
        assert!(p99 >= 100.0, "p99 must reach the tail, got {p99}");
        validate(&text).expect("snapshot with quantiles must validate");
    }

    #[test]
    fn empty_histogram_renders_no_quantiles() {
        let registry = Registry::new();
        let _ = registry.histogram("quiet");
        let text = registry.snapshot().to_prometheus();
        assert!(!text.contains("paragraph_quiet_quantiles"));
    }

    #[test]
    fn validate_rejects_malformed_lines() {
        assert!(validate("m{quantile=\"1.5\"} 3\n").is_err());
        assert!(validate("m{quantile=\"nope\"} 3\n").is_err());
        assert_eq!(validate("m{quantile=\"0.99\"} 3\n"), Ok(1));
        assert!(validate("").is_err());
        assert!(validate("# only comments\n").is_err());
        assert!(validate("metric_without_value\n").is_err());
        assert!(validate("1bad_name 3\n").is_err());
        assert!(validate("name not_a_number\n").is_err());
        assert!(validate("name{le=\"1\" 3\n").is_err());
        assert_eq!(validate("ok 1\nalso{le=\"2\"} 3.5\n"), Ok(2));
    }
}

//! JSONL telemetry log parsing and per-stage summarization.
//!
//! The event log written via [`Registry::emit`](super::Registry::emit) is a
//! deliberately flat dialect of JSON — one object per line, scalar fields
//! only. [`parse_jsonl`] reads exactly that dialect with no external
//! dependencies, and [`summarize`]/[`render_table`] turn a log into the
//! per-stage time/throughput table behind `paragraph stats --telemetry`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One scalar field value from a telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A JSON number (integers are representable exactly up to 2^53).
    Num(f64),
    /// A JSON string, unescaped.
    Str(String),
    /// `true`/`false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl FieldValue {
    /// The value as `u64`, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed telemetry event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the run's registry was created.
    pub ts_ns: u64,
    /// Event kind (`span`, `progress`, `run_start`, ...).
    pub event: String,
    /// Remaining fields, in file order of first occurrence.
    pub fields: BTreeMap<String, FieldValue>,
}

impl Event {
    /// Field accessor.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.get(key)
    }
}

/// Parses a flat JSON object: `{"key": scalar, ...}` with string, number,
/// bool, or null values. Nested objects/arrays are rejected — the telemetry
/// writer never produces them.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, FieldValue>, String> {
    let mut fields = BTreeMap::new();
    let mut chars = line.char_indices().peekable();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected string, found {other:?}")),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("expected '{'".to_owned()),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            other => return Err(format!("expected ':', found {other:?}")),
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some((_, '"')) => FieldValue::Str(parse_string(&mut chars)?),
            Some(&(start, c)) if c == '-' || c.is_ascii_digit() => {
                let mut end = start;
                while let Some(&(i, c)) = chars.peek() {
                    if c == '-'
                        || c == '+'
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || c.is_ascii_digit()
                    {
                        end = i + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let text = &line[start..end];
                FieldValue::Num(text.parse::<f64>().map_err(|e| format!("{text:?}: {e}"))?)
            }
            Some((_, 't' | 'f' | 'n')) => {
                let mut word = String::new();
                while matches!(chars.peek(), Some((_, c)) if c.is_ascii_alphabetic()) {
                    word.push(chars.next().map(|(_, c)| c).unwrap_or('\0'));
                }
                match word.as_str() {
                    "true" => FieldValue::Bool(true),
                    "false" => FieldValue::Bool(false),
                    "null" => FieldValue::Null,
                    other => return Err(format!("bad literal {other:?}")),
                }
            }
            other => return Err(format!("unsupported value start {other:?}")),
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some((_, c)) = chars.next() {
        return Err(format!("trailing content starting at {c:?}"));
    }
    Ok(fields)
}

/// Parses a JSONL telemetry log into events. Blank lines are skipped.
///
/// # Errors
///
/// Returns `line-number: description` for the first malformed line, a line
/// that is not a flat object, or a line missing `ts_ns`/`event`.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields =
            parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ts_ns = fields
            .remove("ts_ns")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("line {}: missing ts_ns", lineno + 1))?;
        let event = match fields.remove("event") {
            Some(FieldValue::Str(s)) => s,
            _ => return Err(format!("line {}: missing event", lineno + 1)),
        };
        events.push(Event {
            ts_ns,
            event,
            fields,
        });
    }
    Ok(events)
}

/// One line `parse_jsonl_lossy` could not parse: its 1-based line number
/// and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedLine {
    /// 1-based line number in the log.
    pub line: usize,
    /// Why the line was rejected.
    pub reason: String,
}

/// Like [`parse_jsonl`], but a malformed line is recorded and skipped
/// instead of failing the whole log. A telemetry log's tail is routinely
/// truncated mid-line by a crash or a full disk — the readable prefix is
/// still worth summarizing, which is exactly when the summary matters most.
pub fn parse_jsonl_lossy(text: &str) -> (Vec<Event>, Vec<SkippedLine>) {
    let mut events = Vec::new();
    let mut skipped = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut skip = |reason: String| {
            skipped.push(SkippedLine {
                line: lineno + 1,
                reason,
            });
        };
        let mut fields = match parse_flat_object(line) {
            Ok(fields) => fields,
            Err(e) => {
                skip(e);
                continue;
            }
        };
        let Some(ts_ns) = fields.remove("ts_ns").and_then(|v| v.as_u64()) else {
            skip("missing ts_ns".to_owned());
            continue;
        };
        let event = match fields.remove("event") {
            Some(FieldValue::Str(s)) => s,
            _ => {
                skip("missing event".to_owned());
                continue;
            }
        };
        events.push(Event {
            ts_ns,
            event,
            fields,
        });
    }
    (events, skipped)
}

/// Aggregated view of one span stage within a log.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSummary {
    /// Completed span executions.
    pub count: u64,
    /// Total time in the stage, nanoseconds.
    pub total_ns: u64,
    /// Longest single execution, nanoseconds.
    pub max_ns: u64,
    /// Sum of per-span `records` fields (0 when the stage carries none).
    pub records: u64,
}

/// Whole-log summary produced by [`summarize`].
#[derive(Debug, Clone, Default)]
pub struct LogSummary {
    /// Per-stage aggregates, by span name.
    pub stages: BTreeMap<String, StageSummary>,
    /// Final counter values from the closing dump, by name.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values from the closing dump, by name.
    pub gauges: BTreeMap<String, i64>,
    /// Timestamp of the last event, nanoseconds.
    pub last_ts_ns: u64,
    /// Total events parsed.
    pub events: usize,
    /// Last `progress` event's records/sec, if any heartbeat was logged.
    pub last_records_per_sec: Option<f64>,
}

/// Folds a parsed log into per-stage aggregates.
///
/// Individual `span` events accumulate into stages; a closing `span_total`
/// dump (which repeats the same executions in aggregate) *replaces* the
/// accumulated figures for its stage rather than double-counting them.
pub fn summarize(events: &[Event]) -> LogSummary {
    let mut summary = LogSummary {
        events: events.len(),
        ..LogSummary::default()
    };
    for event in events {
        summary.last_ts_ns = summary.last_ts_ns.max(event.ts_ns);
        let name = |e: &Event| e.field("name").and_then(|v| v.as_str().map(str::to_owned));
        match event.event.as_str() {
            "span" => {
                let Some(name) = name(event) else { continue };
                let dur = event.field("dur_ns").and_then(|v| v.as_u64()).unwrap_or(0);
                let stage = summary.stages.entry(name).or_default();
                stage.count = stage.count.saturating_add(1);
                stage.total_ns = stage.total_ns.saturating_add(dur);
                stage.max_ns = stage.max_ns.max(dur);
                if let Some(records) = event.field("records").and_then(|v| v.as_u64()) {
                    stage.records = stage.records.saturating_add(records);
                }
            }
            "span_total" => {
                let Some(name) = name(event) else { continue };
                let stage = summary.stages.entry(name).or_default();
                stage.count = event.field("count").and_then(|v| v.as_u64()).unwrap_or(0);
                stage.total_ns = event
                    .field("total_ns")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                stage.max_ns = event.field("max_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            }
            "counter" => {
                if let (Some(name), Some(value)) =
                    (name(event), event.field("value").and_then(|v| v.as_u64()))
                {
                    summary.counters.insert(name, value);
                }
            }
            "gauge" => {
                if let (Some(name), Some(value)) =
                    (name(event), event.field("value").and_then(|v| v.as_f64()))
                {
                    summary.gauges.insert(name, value as i64);
                }
            }
            "progress" => {
                summary.last_records_per_sec =
                    event.field("records_per_sec").and_then(|v| v.as_f64());
            }
            _ => {}
        }
    }
    summary
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the per-stage time/throughput table plus counter footers — the
/// human output of `paragraph stats --telemetry`.
pub fn render_table(summary: &LogSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry summary: {} events, last ts {}",
        summary.events,
        fmt_ns(summary.last_ts_ns)
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "stage", "calls", "total", "mean", "max", "records/s"
    );
    let wall = summary.last_ts_ns.max(1);
    for (name, stage) in &summary.stages {
        let mean = stage.total_ns.checked_div(stage.count).unwrap_or(0);
        let throughput = if stage.records > 0 && stage.total_ns > 0 {
            format!(
                "{:.0}",
                stage.records as f64 / (stage.total_ns as f64 / 1e9)
            )
        } else {
            "-".to_owned()
        };
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12} {:>12} {:>12} {:>14}  ({:.1}% wall)",
            name,
            stage.count,
            fmt_ns(stage.total_ns),
            fmt_ns(mean),
            fmt_ns(stage.max_ns),
            throughput,
            100.0 * stage.total_ns as f64 / wall as f64,
        );
    }
    if summary.stages.is_empty() {
        let _ = writeln!(out, "(no span events in log)");
    }
    if !summary.counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "final counters:");
        for (name, value) in &summary.counters {
            let _ = writeln!(out, "  {name:<30} {value}");
        }
    }
    if !summary.gauges.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "final gauges:");
        for (name, value) in &summary.gauges {
            let _ = writeln!(out, "  {name:<30} {value}");
        }
    }
    if let Some(rate) = summary.last_records_per_sec {
        let _ = writeln!(out);
        let _ = writeln!(out, "last observed rate: {:.2}M records/s", rate / 1e6);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects_with_all_scalar_types() {
        let events = parse_jsonl(
            "{\"ts_ns\":1,\"event\":\"x\",\"s\":\"a\\nb\",\"n\":-2.5,\"t\":true,\"z\":null}\n\n",
        )
        .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ts_ns, 1);
        assert_eq!(events[0].field("s").unwrap().as_str(), Some("a\nb"));
        assert_eq!(events[0].field("n").unwrap().as_f64(), Some(-2.5));
        assert_eq!(events[0].field("t"), Some(&FieldValue::Bool(true)));
        assert_eq!(events[0].field("z"), Some(&FieldValue::Null));
    }

    #[test]
    fn rejects_nested_and_malformed_lines() {
        assert!(parse_jsonl("{\"ts_ns\":1,\"event\":\"x\",\"o\":{}}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"event\":\"x\"}").is_err(), "missing ts_ns");
        assert!(parse_jsonl("{\"ts_ns\":1}").is_err(), "missing event");
        assert!(parse_jsonl("{\"ts_ns\":1,\"event\":\"x\"} trailing").is_err());
    }

    #[test]
    fn summarize_accumulates_spans_and_prefers_totals() {
        let log = concat!(
            "{\"ts_ns\":10,\"event\":\"span\",\"name\":\"decode\",\"dur_ns\":100,\"records\":5}\n",
            "{\"ts_ns\":20,\"event\":\"span\",\"name\":\"decode\",\"dur_ns\":300,\"records\":7}\n",
            "{\"ts_ns\":30,\"event\":\"span\",\"name\":\"analyze\",\"dur_ns\":50}\n",
            "{\"ts_ns\":40,\"event\":\"counter\",\"name\":\"evictions\",\"value\":3}\n",
            "{\"ts_ns\":50,\"event\":\"progress\",\"records_per_sec\":123.0}\n",
            // Closing dump repeats decode in aggregate; must replace, not add.
            "{\"ts_ns\":60,\"event\":\"span_total\",\"name\":\"decode\",\"count\":2,\"total_ns\":400,\"max_ns\":300}\n",
        );
        let summary = summarize(&parse_jsonl(log).unwrap());
        let decode = summary.stages["decode"];
        assert_eq!(decode.count, 2);
        assert_eq!(decode.total_ns, 400);
        assert_eq!(decode.max_ns, 300);
        assert_eq!(decode.records, 12);
        assert_eq!(summary.stages["analyze"].count, 1);
        assert_eq!(summary.counters["evictions"], 3);
        assert_eq!(summary.last_records_per_sec, Some(123.0));
        assert_eq!(summary.last_ts_ns, 60);

        let table = render_table(&summary);
        assert!(table.contains("decode"));
        assert!(table.contains("evictions"));
        assert!(table.contains("last observed rate"));
    }

    #[test]
    fn render_table_handles_empty_log() {
        let table = render_table(&summarize(&[]));
        assert!(table.contains("no span events"));
    }

    #[test]
    fn lossy_parse_skips_bad_lines_and_keeps_the_rest() {
        // A crash-truncated tail and a garbage line: both are skipped with
        // their line numbers, the well-formed lines still parse.
        let log = concat!(
            "{\"ts_ns\":10,\"event\":\"span\",\"name\":\"decode\",\"dur_ns\":100}\n",
            "not json at all\n",
            "{\"ts_ns\":20,\"event\":\"span\",\"name\":\"decode\",\"dur_ns\":50}\n",
            "{\"ts_ns\":30,\"event\":\"span\",\"na", // truncated mid-line
        );
        let (events, skipped) = parse_jsonl_lossy(log);
        assert_eq!(events.len(), 2);
        assert_eq!(skipped.len(), 2);
        assert_eq!(skipped[0].line, 2);
        assert_eq!(skipped[1].line, 4);
        // The same log fails outright under the strict parser.
        assert!(parse_jsonl(log).is_err());
    }

    #[test]
    fn lossy_parse_of_a_clean_log_skips_nothing() {
        let log = "{\"ts_ns\":1,\"event\":\"x\"}\n\n{\"ts_ns\":2,\"event\":\"y\"}\n";
        let (events, skipped) = parse_jsonl_lossy(log);
        assert_eq!(events.len(), 2);
        assert!(skipped.is_empty());
    }
}

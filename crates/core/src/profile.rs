//! The parallelism profile: operations per level of the topologically
//! sorted DDG.

use std::fmt;
use std::io::{self, Write};

/// Histogram of operations per DDG level (Figure 7 of the paper).
///
/// The profile is recorded exactly while the critical path is short. When
/// the number of levels outgrows the configured bin budget, the profile
/// coarsens itself: the bin width doubles and adjacent bins are folded
/// together — the paper's "a range of Ldest values is mapped to each
/// distribution entry, and in the final output, the average number of
/// operations per level within the range is computed."
///
/// # Examples
///
/// ```
/// use paragraph_core::ParallelismProfile;
///
/// let mut profile = ParallelismProfile::new(1024);
/// for level in [0, 0, 0, 1, 2, 2] {
///     profile.record(level);
/// }
/// assert_eq!(profile.total_ops(), 6);
/// assert_eq!(profile.levels(), 3);
/// assert_eq!(profile.mean_ops_per_level(), 2.0);
/// assert_eq!(profile.exact_counts(), Some(vec![3, 1, 2]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelismProfile {
    counts: Vec<u64>,
    max_bins: usize,
    bin_width: u64,
    total_ops: u64,
    max_level: Option<u64>,
}

/// One bin of a (possibly coarsened) parallelism profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileBin {
    /// First DDG level covered by this bin.
    pub first_level: u64,
    /// Number of levels covered (the bin width; the last bin may extend past
    /// the deepest level actually used).
    pub width: u64,
    /// Total operations placed in the covered levels.
    pub ops: u64,
    /// Average operations per level within the bin (the paper's reported
    /// quantity).
    pub avg_ops_per_level: f64,
}

impl ParallelismProfile {
    /// Creates an empty profile that holds at most `max_bins` bins before
    /// coarsening.
    ///
    /// # Panics
    ///
    /// Panics if `max_bins` is zero.
    pub fn new(max_bins: usize) -> ParallelismProfile {
        assert!(max_bins > 0, "profile must have at least one bin");
        ParallelismProfile {
            counts: Vec::new(),
            max_bins,
            bin_width: 1,
            total_ops: 0,
            max_level: None,
        }
    }

    /// Records one operation completing at `level` (0-based).
    pub fn record(&mut self, level: u64) {
        self.record_many(level, 1);
    }

    /// Records `ops` operations completing at `level`.
    pub fn record_many(&mut self, level: u64, ops: u64) {
        if ops == 0 {
            return;
        }
        while level / self.bin_width >= self.max_bins as u64 {
            self.coarsen();
        }
        let idx = (level / self.bin_width) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += ops;
        self.total_ops += ops;
        self.max_level = Some(self.max_level.map_or(level, |m| m.max(level)));
    }

    fn coarsen(&mut self) {
        // Saturation is unreachable in practice (widths double from 1) and
        // still terminates the caller's loop: level / u64::MAX is 0.
        self.bin_width = self.bin_width.saturating_mul(2);
        let new_len = self.counts.len().div_ceil(2);
        for i in 0..new_len {
            let a = self.counts[2 * i];
            let b = self.counts.get(2 * i + 1).copied().unwrap_or(0);
            self.counts[i] = a + b;
        }
        self.counts.truncate(new_len);
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Number of levels in the profile: one past the deepest recorded level,
    /// or zero if nothing was recorded. Equals the critical path length.
    pub fn levels(&self) -> u64 {
        self.max_level.map_or(0, |m| m + 1)
    }

    /// Current bin width (1 while the profile is exact).
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Mean operations per level — the *available parallelism*.
    ///
    /// Returns 0 for an empty profile.
    pub fn mean_ops_per_level(&self) -> f64 {
        if self.levels() == 0 {
            0.0
        } else {
            self.total_ops as f64 / self.levels() as f64
        }
    }

    /// Peak of the per-bin level averages.
    ///
    /// With bin width 1 this is the true maximum number of operations in any
    /// level (the minimum machine width to execute the DDG at full speed);
    /// with coarsened bins it is a lower bound on that maximum.
    pub fn peak_avg_ops_per_level(&self) -> f64 {
        self.bins().map(|b| b.avg_ops_per_level).fold(0.0, f64::max)
    }

    /// The exact per-level counts, if the profile never coarsened.
    pub fn exact_counts(&self) -> Option<Vec<u64>> {
        if self.bin_width == 1 {
            let mut counts = self.counts.clone();
            counts.truncate(self.levels() as usize);
            Some(counts)
        } else {
            None
        }
    }

    /// Coefficient of variation of per-bin averages: a simple measure of the
    /// burstiness the paper observes ("periods of lots of parallelism
    /// followed by periods of little parallelism"). 0 means perfectly flat.
    pub fn burstiness(&self) -> f64 {
        let values: Vec<f64> = self.bins().map(|b| b.avg_ops_per_level).collect();
        if values.len() < 2 {
            return 0.0;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        var.sqrt() / mean
    }

    /// The raw accumulator, for checkpointing: `(counts, bin_width,
    /// total_ops, max_level)`.
    pub(crate) fn raw_parts(&self) -> (&[u64], u64, u64, Option<u64>) {
        (&self.counts, self.bin_width, self.total_ops, self.max_level)
    }

    /// Rebuilds a profile from checkpointed parts; `None` if they are
    /// internally inconsistent.
    pub(crate) fn from_raw_parts(
        max_bins: usize,
        counts: Vec<u64>,
        bin_width: u64,
        total_ops: u64,
        max_level: Option<u64>,
    ) -> Option<ParallelismProfile> {
        if max_bins == 0 || bin_width == 0 || counts.len() > max_bins {
            return None;
        }
        if counts.iter().copied().try_fold(0u64, u64::checked_add) != Some(total_ops) {
            return None;
        }
        match max_level {
            Some(m) if m / bin_width >= counts.len() as u64 => return None,
            None if total_ops != 0 => return None,
            _ => {}
        }
        Some(ParallelismProfile {
            counts,
            max_bins,
            bin_width,
            total_ops,
            max_level,
        })
    }

    /// Iterates over the populated portion of the profile.
    pub fn bins(&self) -> impl Iterator<Item = ProfileBin> + '_ {
        let levels = self.levels();
        let width = self.bin_width;
        self.counts
            .iter()
            .enumerate()
            .take_while(move |(i, _)| (*i as u64) * width < levels)
            .map(move |(i, &ops)| {
                let first_level = i as u64 * width;
                let covered = width.min(levels - first_level);
                ProfileBin {
                    first_level,
                    width,
                    ops,
                    avg_ops_per_level: ops as f64 / covered as f64,
                }
            })
    }

    /// Writes the profile as CSV (`level,ops_per_level`), one row per bin —
    /// the data series behind Figure 7.
    ///
    /// The writer is flushed before returning: callers routinely hand in a
    /// by-value `BufWriter`, where an unflushed late write error (a full
    /// disk, say) would otherwise be swallowed by `Drop` and a truncated
    /// CSV would look like success.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`, including flush errors.
    pub fn write_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "level,ops_per_level")?;
        for bin in self.bins() {
            writeln!(out, "{},{:.4}", bin.first_level, bin.avg_ops_per_level)?;
        }
        out.flush()
    }

    /// Serializes the exact accumulator state as a single line of text, for
    /// embedding in sweep stage markers. Unlike the CSV (binned averages),
    /// this round-trips losslessly through [`ParallelismProfile::decode`].
    pub fn encode(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{} {} {}",
            self.max_bins, self.bin_width, self.total_ops
        );
        match self.max_level {
            Some(level) => {
                let _ = write!(out, " {level}");
            }
            None => out.push_str(" -"),
        }
        out.push(';');
        for (i, count) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{count}");
        }
        out
    }

    /// Rebuilds a profile from [`ParallelismProfile::encode`] output.
    /// Returns `None` for malformed or internally inconsistent text.
    pub fn decode(text: &str) -> Option<ParallelismProfile> {
        let (head, tail) = text.split_once(';')?;
        let mut fields = head.split_ascii_whitespace();
        let max_bins: usize = fields.next()?.parse().ok()?;
        let bin_width: u64 = fields.next()?.parse().ok()?;
        let total_ops: u64 = fields.next()?.parse().ok()?;
        let max_level = match fields.next()? {
            "-" => None,
            level => Some(level.parse().ok()?),
        };
        if fields.next().is_some() {
            return None;
        }
        let counts: Vec<u64> = if tail.is_empty() {
            Vec::new()
        } else {
            let mut counts = Vec::new();
            for field in tail.split(',') {
                counts.push(field.parse().ok()?);
            }
            counts
        };
        ParallelismProfile::from_raw_parts(max_bins, counts, bin_width, total_ops, max_level)
    }

    /// Renders a coarse ASCII plot of the profile, `height` rows tall.
    ///
    /// The y axis is logarithmic: dataflow-limit profiles are extremely
    /// bursty (a huge spike of zero-dependency operations in the first
    /// level), and a linear scale would show nothing else.
    pub fn ascii_plot(&self, width: usize, height: usize) -> String {
        let bins: Vec<ProfileBin> = self.bins().collect();
        if bins.is_empty() || width == 0 || height == 0 {
            return String::from("(empty profile)\n");
        }
        // Resample to `width` columns, keeping each column's maximum.
        let mut columns = vec![0.0f64; width];
        let levels = self.levels() as f64;
        for bin in &bins {
            let start = (bin.first_level as f64 / levels * width as f64) as usize;
            let end = (((bin.first_level + bin.width) as f64 / levels) * width as f64)
                .ceil()
                .min(width as f64) as usize;
            for col in columns.iter_mut().take(end.max(start + 1)).skip(start) {
                *col = col.max(bin.avg_ops_per_level);
            }
        }
        let peak = columns.iter().cloned().fold(0.0, f64::max).max(1.0);
        let log_peak = (1.0 + peak).ln();
        let mut out = String::new();
        for row in (0..height).rev() {
            let threshold = log_peak * (row as f64 + 0.5) / height as f64;
            if row == height - 1 {
                out.push_str(&format!("{peak:>10.1} |"));
            } else if row == 0 {
                out.push_str(&format!("{:>10.1} |", 0.0));
            } else {
                out.push_str("           |");
            }
            for &c in &columns {
                out.push(if (1.0 + c).ln() >= threshold {
                    '#'
                } else {
                    ' '
                });
            }
            out.push('\n');
        }
        out.push_str("           +");
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!(
            "            0 .. {} levels (peak {:.1} ops/level, log y-scale)\n",
            self.levels(),
            peak
        ));
        out
    }
}

impl fmt::Display for ParallelismProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops over {} levels (mean {:.2}/level, bin width {})",
            self.total_ops,
            self.levels(),
            self.mean_ops_per_level(),
            self.bin_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_profile_matches_hand_counts() {
        let mut p = ParallelismProfile::new(16);
        for level in [0u64, 0, 0, 0, 1, 1, 2, 3] {
            p.record(level);
        }
        assert_eq!(p.exact_counts(), Some(vec![4, 2, 1, 1]));
        assert_eq!(p.levels(), 4);
        assert_eq!(p.mean_ops_per_level(), 2.0);
        assert_eq!(p.peak_avg_ops_per_level(), 4.0);
    }

    #[test]
    fn coarsening_preserves_totals() {
        let mut p = ParallelismProfile::new(4);
        for level in 0..100u64 {
            p.record(level);
        }
        assert_eq!(p.total_ops(), 100);
        assert_eq!(p.levels(), 100);
        assert!(p.bin_width() >= 32);
        assert_eq!(p.exact_counts(), None);
        let binned: u64 = p.bins().map(|b| b.ops).sum();
        assert_eq!(binned, 100);
    }

    #[test]
    fn coarsened_flat_profile_has_flat_averages() {
        let mut p = ParallelismProfile::new(4);
        for level in 0..128u64 {
            p.record_many(level, 3);
        }
        for bin in p.bins() {
            assert!((bin.avg_ops_per_level - 3.0).abs() < 1e-9);
        }
        assert_eq!(p.burstiness(), 0.0);
    }

    #[test]
    fn partial_last_bin_divides_by_covered_levels_only() {
        let mut p = ParallelismProfile::new(2);
        // Force width 2 with levels 0..3 (3 levels; last bin covers 1 level).
        for level in [0u64, 1, 2] {
            p.record_many(level, 2);
        }
        let bins: Vec<_> = p.bins().collect();
        assert_eq!(p.bin_width(), 2);
        assert_eq!(bins.len(), 2);
        assert!((bins[0].avg_ops_per_level - 2.0).abs() < 1e-9);
        // Last bin: 2 ops over 1 covered level.
        assert!((bins[1].avg_ops_per_level - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_profile_has_positive_burstiness() {
        let mut p = ParallelismProfile::new(64);
        p.record_many(0, 1000);
        for level in 1..32 {
            p.record(level);
        }
        assert!(p.burstiness() > 1.0);
    }

    #[test]
    fn record_many_zero_is_a_no_op() {
        let mut p = ParallelismProfile::new(8);
        p.record_many(5, 0);
        assert_eq!(p.total_ops(), 0);
        assert_eq!(p.levels(), 0);
        assert_eq!(p.mean_ops_per_level(), 0.0);
    }

    #[test]
    fn sparse_levels_far_apart_coarsen_rather_than_allocate() {
        let mut p = ParallelismProfile::new(8);
        p.record(0);
        p.record(1_000_000_000);
        assert!(p.counts.len() <= 8);
        assert_eq!(p.total_ops(), 2);
        assert_eq!(p.levels(), 1_000_000_001);
    }

    #[test]
    fn csv_output_has_header_and_rows() {
        let mut p = ParallelismProfile::new(8);
        p.record(0);
        p.record(1);
        let mut buf = Vec::new();
        p.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("level,ops_per_level\n"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn csv_flush_errors_are_propagated() {
        // Regression: fig drivers pass a by-value BufWriter, so an error
        // surfacing only at flush time (e.g. a full disk) used to be
        // swallowed by Drop and a truncated CSV looked like success.
        struct FlushFails {
            flushed: bool,
        }
        impl Write for FlushFails {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                self.flushed = true;
                Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
            }
        }
        let mut p = ParallelismProfile::new(8);
        p.record(0);
        let mut sink = FlushFails { flushed: false };
        let err = p.write_csv(&mut sink).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(sink.flushed, "write_csv must flush before returning");
    }

    #[test]
    fn csv_propagates_buffered_write_errors_through_flush() {
        // A BufWriter over a failing device defers the error to flush; the
        // whole point of flushing inside write_csv is that the caller's `?`
        // sees it.
        struct BrokenDevice;
        impl Write for BrokenDevice {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("device gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut p = ParallelismProfile::new(8);
        p.record(0);
        let out = io::BufWriter::with_capacity(1 << 20, BrokenDevice);
        assert!(p.write_csv(out).is_err(), "buffered error must surface");
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let mut p = ParallelismProfile::new(8);
        for level in [0u64, 0, 1, 5, 900, 1_000_000] {
            p.record(level);
        }
        let text = p.encode();
        let back = ParallelismProfile::decode(&text).unwrap();
        assert_eq!(back, p);
        // Empty profile round-trips too.
        let empty = ParallelismProfile::new(4);
        assert_eq!(ParallelismProfile::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_malformed_text() {
        for bad in [
            "",
            "no-semicolon",
            "1 1 0 -",
            "0 1 0 -;",
            "8 1 2 0;1,1,junk",
            "8 1 5 0;1,1", // counts do not sum to total_ops
        ] {
            assert!(
                ParallelismProfile::decode(bad).is_none(),
                "decode accepted {bad:?}"
            );
        }
    }

    #[test]
    fn ascii_plot_is_never_empty() {
        let mut p = ParallelismProfile::new(8);
        assert!(p.ascii_plot(40, 8).contains("empty"));
        p.record(0);
        let plot = p.ascii_plot(40, 8);
        assert!(plot.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        ParallelismProfile::new(0);
    }
}

//! The live well: the paper's streaming DDG placement algorithm.

use crate::branch::{BranchPolicy, Predictor};
use crate::checkpoint::{self, CheckpointError, TraceIdentity};
use crate::config::{AnalysisConfig, SyscallPolicy};
use crate::dist::Distribution;
use crate::fasthash::FastMap;
use crate::memmodel::MemOrdering;
use crate::profile::ParallelismProfile;
use crate::report::AnalysisReport;
use crate::well::{FlatWell, MemTable, PagedWell, ValueRecord};
use crate::window::WindowLimiter;
use paragraph_isa::OpClass;
use paragraph_trace::crc32::crc32;
use paragraph_trace::govern::{LimitViolation, Limits, ResourceGovernor};
use paragraph_trace::wire;
use paragraph_trace::{Loc, TraceRecord};
use std::io::{Read, Write};

// Checkpoint body primitives. Writes go to a `Vec<u8>` (infallible); reads
// surface `Truncated` / `Io` through `CheckpointError`.

fn w_u64(buf: &mut Vec<u8>, v: u64) {
    // io::Write for Vec<u8> cannot fail.
    let _ = wire::write_varint(buf, v);
}

fn w_i64(buf: &mut Vec<u8>, v: i64) {
    w_u64(buf, wire::zigzag(v));
}

fn r_u64<R: Read>(r: &mut R) -> Result<u64, CheckpointError> {
    wire::read_varint(r).map_err(CheckpointError::from)
}

fn r_i64<R: Read>(r: &mut R) -> Result<i64, CheckpointError> {
    Ok(wire::unzigzag(r_u64(r)?))
}

fn r_usize<R: Read>(r: &mut R) -> Result<usize, CheckpointError> {
    usize::try_from(r_u64(r)?).map_err(|_| CheckpointError::Corrupt("count overflows usize"))
}

fn r_flag<R: Read>(r: &mut R) -> Result<bool, CheckpointError> {
    match r_u64(r)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CheckpointError::Corrupt("flag byte is neither 0 nor 1")),
    }
}

fn w_value_record(buf: &mut Vec<u8>, record: &ValueRecord) {
    w_u64(buf, u64::from(record.readers));
    w_i64(buf, record.avail);
    w_i64(buf, record.deepest_use);
}

fn r_value_record<R: Read>(r: &mut R) -> Result<ValueRecord, CheckpointError> {
    let readers = u32::try_from(r_u64(r)?)
        .map_err(|_| CheckpointError::Corrupt("reader count overflows u32"))?;
    let avail = r_i64(r)?;
    let deepest_use = r_i64(r)?;
    if deepest_use < avail {
        return Err(CheckpointError::Corrupt("value used before it was created"));
    }
    Ok(ValueRecord {
        readers,
        avail,
        deepest_use,
    })
}

fn w_dist(buf: &mut Vec<u8>, dist: &Distribution) {
    w_u64(buf, dist.distinct_values() as u64);
    for (value, count) in dist.iter() {
        w_u64(buf, value);
        w_u64(buf, count);
    }
}

/// Validates a declared entry count before anything is allocated for it:
/// first against the governor's declared-length cap (a hostile checkpoint
/// declaring a 4 GiB table is a policy rejection), then against the bytes
/// actually remaining in the body (every entry costs at least one byte, so
/// a count past the remainder is an impossible state — corruption).
fn check_declared_count(
    governor: &ResourceGovernor,
    what: &'static str,
    declared: usize,
    remaining: usize,
) -> Result<(), CheckpointError> {
    governor
        .check_declared_len(what, declared as u64)
        .map_err(CheckpointError::LimitExceeded)?;
    if declared > remaining {
        return Err(CheckpointError::Corrupt(
            "declared count exceeds the remaining body",
        ));
    }
    Ok(())
}

fn r_dist<R: Read>(r: &mut R) -> Result<Distribution, CheckpointError> {
    let distinct = r_usize(r)?;
    let mut dist = Distribution::new();
    let mut prev: Option<u64> = None;
    for _ in 0..distinct {
        let value = r_u64(r)?;
        if prev.is_some_and(|p| p >= value) {
            return Err(CheckpointError::Corrupt("distribution values not sorted"));
        }
        prev = Some(value);
        let count = r_u64(r)?;
        if count == 0 {
            return Err(CheckpointError::Corrupt("distribution entry with count 0"));
        }
        dist.record_many(value, count);
    }
    Ok(dist)
}

/// Raises a registry counter to `total` (the analyzer already counts these
/// in plain fields; publishing just mirrors the running total). Counters are
/// monotonic, so only the positive difference is added.
fn set_counter(registry: &crate::telemetry::Registry, name: &'static str, total: u64) {
    let counter = registry.counter(name);
    let current = counter.get();
    if total > current {
        counter.add(total - current);
    }
}

/// The streaming DDG analyzer (the paper's *Paragraph* algorithm, §3.2).
///
/// Processes a serial execution trace one record at a time, maintaining the
/// *live well* — a table recording, for every live value, the DDG level in
/// which it was created. Each value-creating instruction is placed at
///
/// ```text
/// Ldest = MAX(Lsrc1, Lsrc2, highestLevel [, Ddest]) + top
/// ```
///
/// where `Lsrc*` are the levels at which the source values become available,
/// `highestLevel` is the current placement floor (raised by firewalls and by
/// instruction-window displacement), `Ddest` is the deepest use of the
/// previous value in the destination location (only when that location's
/// storage class is not renamed), and `top` is the operation latency.
///
/// *Deviation note:* the paper's prose gives the storage-dependency term as
/// `Ddest + 1`, but its own worked example (Figure 2, critical path 6) is
/// only consistent with `Ddest` when levels are completion levels, so that
/// is what this implementation (and the explicit-graph builder, which is
/// cross-validated against it) uses. See `DESIGN.md` §1.
///
/// # Examples
///
/// ```
/// use paragraph_core::{AnalysisConfig, LiveWell};
/// use paragraph_trace::synthetic;
///
/// let mut analyzer = LiveWell::new(AnalysisConfig::dataflow_limit());
/// for record in synthetic::figure1() {
///     analyzer.process(&record);
/// }
/// let report = analyzer.finish();
/// assert_eq!(report.critical_path_length(), 4);
/// ```
#[derive(Debug)]
pub struct LiveWellImpl<M: MemTable> {
    config: AnalysisConfig,
    int_regs: [Option<ValueRecord>; 32],
    fp_regs: [Option<ValueRecord>; 32],
    mem: M,
    /// `highestLevel - 1` in the paper's terms: every newly placed operation
    /// completes at `floor + top` at the earliest.
    floor: i64,
    /// The paper's `deepestLevelYetUsed`: the deepest completion level of any
    /// placed operation; -1 before anything is placed.
    deepest: i64,
    window: WindowLimiter,
    profile: ParallelismProfile,
    predictor: Option<Predictor>,
    /// Operations started per level, when an issue limit is configured.
    issue: Option<IssueLedger>,
    value_stats: Option<ValueStats>,
    /// Conservative memory ordering, under `MemoryModel::NoDisambiguation`.
    mem_ordering: MemOrdering,
    total_records: u64,
    placed: u64,
    syscalls: u64,
    firewalls: u64,
    branch_firewalls: u64,
    /// Memory locations dropped from the live well under
    /// [`AnalysisConfig::live_well_cap`]; non-zero counts are an accuracy
    /// caveat (a read of an evicted location looks preexisting).
    evictions: u64,
    peak_live_values: usize,
    class_placed: [u64; OpClass::ALL.len()],
    /// Times the instruction window displaced an instruction whose level was
    /// above the floor, i.e. the window actually constrained placement.
    /// Telemetry-only: deliberately *not* checkpointed (checkpoints are
    /// bit-identical to pre-telemetry builds), so after a resume it counts
    /// from the restart.
    window_stalls: u64,
    /// Fingerprint of the trace this analysis is running over, installed by
    /// the driver that materialized the records. Saved into version-2
    /// checkpoints and verified on resume; `None` (e.g. a streamed trace
    /// nobody fingerprinted, or a version-1 checkpoint) skips the check.
    trace_identity: Option<TraceIdentity>,
}

/// The default analyzer: the streaming algorithm over the paged memory
/// table ([`PagedWell`]) — hot-page lookups are a shift/mask plus one
/// pointer chase, and bounded-mode eviction is guided by per-page
/// summaries. See `docs/hotpath.md` for layout and measurements.
pub type LiveWell = LiveWellImpl<PagedWell>;

/// The analyzer over the legacy flat hash table ([`FlatWell`]): one hashed
/// probe per access. Kept as the executable reference for the equivalence
/// suite and as the "before" leg of the hot-path benchmark; it produces
/// bit-identical reports and checkpoints to [`LiveWell`].
pub type FlatLiveWell = LiveWellImpl<FlatWell>;

/// The exported final state of one independently analyzed trace segment,
/// produced by a segment worker and spliced onto the preceding state with
/// [`LiveWellImpl::merge_segment`]. Levels inside are *relative* to the
/// segment's own fresh floor of -1; the merge shifts them by the absolute
/// floor at the cut. See [`crate::parallel`].
#[derive(Debug, Clone)]
pub struct SegmentOutcome {
    /// Relative placement floor at the segment's end.
    floor: i64,
    /// Relative deepest completion level placed in the segment.
    deepest: i64,
    /// Exact operations placed per relative level (index = level).
    level_counts: Vec<u64>,
    /// Memory addresses the segment touched, ascending.
    addrs: Vec<u64>,
    total_records: u64,
    placed: u64,
    syscalls: u64,
    firewalls: u64,
    branch_firewalls: u64,
    window_stalls: u64,
    class_placed: [u64; OpClass::ALL.len()],
}

impl SegmentOutcome {
    /// Trace records the segment covered.
    pub fn records(&self) -> u64 {
        self.total_records
    }
}

#[derive(Debug, Default)]
struct ValueStats {
    lifetimes: Distribution,
    sharing: Distribution,
}

impl ValueStats {
    fn retire(&mut self, record: &ValueRecord) {
        // Preexisting values (created before the program began) are not
        // counted; the paper's distributions cover created values.
        if record.avail >= 0 {
            self.lifetimes
                .record((record.deepest_use - record.avail) as u64);
            self.sharing.record(u64::from(record.readers));
        }
    }
}

/// Per-level operation-start counters for issue-limited runs.
///
/// Every free-slot scan begins at `base + 1 > floor`, and the floor only
/// rises, so counters at or below the floor can never be probed again —
/// they are pruned whenever the floor rises, which bounds the ledger to
/// the live band `(floor, deepest]` instead of the whole critical path.
///
/// `min_nonfull` is a scan cursor. Invariant: every level `L` with
/// `pruned_floor < L < min_nonfull` holds exactly `limit` starts. Counters
/// only increase, so the invariant is stable; scans starting below the
/// cursor jump straight to it instead of re-walking known-full levels.
#[derive(Debug)]
struct IssueLedger {
    starts: FastMap<i64, u32>,
    /// Smallest level above `pruned_floor` not known to be full.
    min_nonfull: i64,
    /// Counters at or below this level have been discarded.
    pruned_floor: i64,
}

impl Default for IssueLedger {
    fn default() -> IssueLedger {
        IssueLedger {
            starts: FastMap::default(),
            min_nonfull: 0,
            pruned_floor: -1,
        }
    }
}

impl IssueLedger {
    /// Finds the first level after `base` with a free start slot, claims
    /// it, and returns it. Identical placement to a plain linear scan from
    /// `base + 1`; the cursor only skips levels already proven full.
    fn place(&mut self, base: i64, limit: usize) -> i64 {
        let mut start = base + 1;
        if start < self.min_nonfull {
            start = self.min_nonfull;
        }
        while self.is_full(start, limit) {
            start += 1;
        }
        let count = self.starts.entry(start).or_insert(0);
        *count += 1;
        if *count as usize >= limit && start == self.min_nonfull {
            self.min_nonfull += 1;
            while self.is_full(self.min_nonfull, limit) {
                self.min_nonfull += 1;
            }
        }
        start
    }

    fn is_full(&self, level: i64, limit: usize) -> bool {
        self.starts
            .get(&level)
            .is_some_and(|&n| n as usize >= limit)
    }

    /// Discards counters at or below `floor`; they are unreachable because
    /// scans always start above the (monotone) floor. Small floor steps
    /// remove exact keys; large jumps fall back to one retain sweep.
    fn prune_to(&mut self, floor: i64) {
        if floor <= self.pruned_floor {
            return;
        }
        let span = i128::from(floor) - i128::from(self.pruned_floor);
        if span <= self.starts.len() as i128 {
            for level in (self.pruned_floor + 1)..=floor {
                self.starts.remove(&level);
            }
        } else {
            self.starts.retain(|&level, _| level > floor);
        }
        self.pruned_floor = floor;
        if self.min_nonfull <= floor {
            self.min_nonfull = floor + 1;
        }
    }

    /// Live counter count — the quantity the leak regression test bounds.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.starts.len()
    }
}

impl<M: MemTable> LiveWellImpl<M> {
    /// Creates an analyzer for one pass under `config`.
    pub fn new(config: AnalysisConfig) -> LiveWellImpl<M> {
        let predictor = match config.branch_policy() {
            BranchPolicy::Predict(kind) => Some(Predictor::new(kind)),
            _ => None,
        };
        LiveWellImpl {
            window: WindowLimiter::new(config.window()),
            profile: ParallelismProfile::new(config.profile_bins()),
            predictor,
            issue: config.issue_limit().map(|_| IssueLedger::default()),
            value_stats: config.value_stats().then(ValueStats::default),
            mem_ordering: MemOrdering::default(),
            config,
            int_regs: [None; 32],
            fp_regs: [None; 32],
            mem: M::default(),
            floor: -1,
            deepest: -1,
            total_records: 0,
            placed: 0,
            syscalls: 0,
            firewalls: 0,
            branch_firewalls: 0,
            evictions: 0,
            peak_live_values: 0,
            class_placed: [0; OpClass::ALL.len()],
            window_stalls: 0,
            trace_identity: None,
        }
    }

    /// Installs the trace identity fingerprint to embed in checkpoints.
    /// Call it once, before analysis, from whichever driver materialized
    /// the trace; the analyzer itself never hashes records.
    pub fn set_trace_identity(&mut self, identity: Option<TraceIdentity>) {
        self.trace_identity = identity;
    }

    /// The trace identity carried by this analyzer (from
    /// [`set_trace_identity`](Self::set_trace_identity) or a resumed
    /// version-2 checkpoint), if any.
    pub fn trace_identity(&self) -> Option<TraceIdentity> {
        self.trace_identity
    }

    /// Checks a resumed checkpoint's trace identity against the trace
    /// offered for the rest of the run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::TraceMismatch`] when the checkpoint carries an
    /// identity and it differs from `current`. A checkpoint without an
    /// identity (version 1, or a streamed save) passes unverified.
    pub fn verify_trace_identity(&self, current: &TraceIdentity) -> Result<(), CheckpointError> {
        match self.trace_identity {
            Some(saved) if saved != *current => Err(CheckpointError::TraceMismatch {
                saved,
                current: *current,
            }),
            _ => Ok(()),
        }
    }

    fn entry(&mut self, loc: Loc) -> &mut ValueRecord {
        let slot = match loc {
            Loc::IntReg(r) => &mut self.int_regs[r.index() as usize],
            Loc::FpReg(r) => &mut self.fp_regs[r.index() as usize],
            Loc::Mem(addr) => return self.mem.get_or_insert_preexisting(addr),
        };
        slot.get_or_insert_with(ValueRecord::preexisting)
    }

    fn peek(&self, loc: Loc) -> Option<ValueRecord> {
        match loc {
            Loc::IntReg(r) => self.int_regs[r.index() as usize],
            Loc::FpReg(r) => self.fp_regs[r.index() as usize],
            Loc::Mem(addr) => self.mem.get(addr).copied(),
        }
    }

    fn put(&mut self, loc: Loc, record: ValueRecord) {
        let old = match loc {
            Loc::IntReg(r) => self.int_regs[r.index() as usize].replace(record),
            Loc::FpReg(r) => self.fp_regs[r.index() as usize].replace(record),
            Loc::Mem(addr) => self.mem.insert(addr, record),
        };
        if let (Some(stats), Some(old)) = (self.value_stats.as_mut(), old) {
            stats.retire(&old);
        }
    }

    /// Processes one trace record; returns the completion level the record
    /// was placed at, or `None` if it was not placed in the DDG (control
    /// instructions; system calls under the optimistic policy).
    pub fn process(&mut self, record: &TraceRecord) -> Option<u64> {
        self.total_records += 1;
        let class = record.class();

        // The instruction enters the window, displacing the oldest visible
        // instruction; the displaced level becomes a firewall below which
        // this (and every later) instruction must be placed.
        if let Some((displaced, ())) = self.window.make_room() {
            if displaced > self.floor {
                self.raise_floor(displaced);
                self.window_stalls += 1;
            }
        }

        let skip = !class.creates_value()
            || (class == OpClass::Syscall
                && self.config.syscall_policy() == SyscallPolicy::Optimistic);
        if skip {
            if class == OpClass::Syscall {
                self.syscalls += 1;
            }
            if class == OpClass::Branch {
                self.observe_branch(record);
            }
            self.window.push(None);
            return None;
        }

        // Ldest = MAX(Lsrc..., highestLevel [, Ddest]) + top
        let mut base = self.floor;
        for &src in record.srcs() {
            base = base.max(self.entry(src).avail);
        }
        if let Some(dest) = record.dest() {
            if !self.config.renames().renames(dest, self.config.segments()) {
                if let Some(old) = self.peek(dest) {
                    base = base.max(old.deepest_use);
                }
            }
        }
        if self.config.memory_model().is_conservative() {
            // Without disambiguation a load may alias any earlier store,
            // and a store any earlier load or store.
            let bound = match class {
                OpClass::Load => self.mem_ordering.load_floor(),
                OpClass::Store => self.mem_ordering.store_floor(),
                _ => None,
            };
            if let Some((level, _)) = bound {
                base = base.max(level);
            }
        }
        let top = i64::from(self.config.latency().latency(class));
        let ldest = if let Some(limit) = self.config.issue_limit() {
            // Resource dependency: at most `limit` operations may start in
            // any level; slide the start level down to the first free slot.
            let ledger = self.issue.get_or_insert_with(IssueLedger::default);
            ledger.place(base, limit) + top - 1
        } else {
            base + top
        };

        self.profile.record(ldest as u64);
        self.deepest = self.deepest.max(ldest);
        self.placed += 1;
        self.class_placed[class as usize] += 1;
        if self.config.memory_model().is_conservative() {
            match class {
                OpClass::Load => self.mem_ordering.observe_load(ldest, usize::MAX),
                OpClass::Store => self.mem_ordering.observe_store(ldest, usize::MAX),
                _ => {}
            }
        }

        for &src in record.srcs() {
            let entry = self.entry(src);
            entry.deepest_use = entry.deepest_use.max(ldest);
            // Saturating: a location read more than u32::MAX times pins at
            // the ceiling instead of wrapping the sharing distribution.
            entry.readers = entry.readers.saturating_add(1);
        }
        if let Some(dest) = record.dest() {
            self.put(
                dest,
                ValueRecord {
                    readers: 0,
                    avail: ldest,
                    deepest_use: ldest,
                },
            );
        }

        if class == OpClass::Syscall {
            self.syscalls += 1;
            if self.config.syscall_policy() == SyscallPolicy::Conservative {
                // Place a firewall immediately after the deepest computation:
                // no later instruction may be placed higher. The syscall was
                // just placed above the old floor, so this is always a raise.
                self.raise_floor(self.deepest);
                self.firewalls += 1;
            }
        }

        self.window.push(Some((ldest, ())));

        // The paper's working-set concern: "a very large memory (32 MBytes)
        // was required to hold the working set of Paragraph". Track the peak
        // so reports can size the live well. Memory entries dominate; the
        // register files are a constant 64.
        self.peak_live_values = self.peak_live_values.max(self.mem.len() + 64);
        self.enforce_live_well_cap();

        Some(ldest as u64)
    }

    /// Bounded live-well mode: when the memory table exceeds the configured
    /// cap, evict the coldest locations (smallest `deepest_use`, address as
    /// tie-break, so eviction is deterministic). An evicted location that is
    /// read again looks preexisting (level -1), which can only shorten
    /// dependences — the eviction count is reported as an accuracy caveat.
    /// Eviction runs in batches (down to 7/8 of the cap) so a table sitting
    /// at the cap does not pay a full scan per record. The selection itself
    /// is the table's [`MemTable::evict_coldest`]: summary-guided on the
    /// paged layout, `select_nth_unstable` on the flat one — both evict the
    /// exact same set the old full sort chose.
    fn enforce_live_well_cap(&mut self) {
        let Some(cap) = self.config.live_well_cap() else {
            return;
        };
        if self.mem.len() <= cap {
            return;
        }
        let target = cap - cap / 8;
        let excess = self.mem.len() - target;
        let LiveWellImpl {
            mem, value_stats, ..
        } = self;
        let evicted = mem.evict_coldest(excess, |old| {
            if let Some(stats) = value_stats.as_mut() {
                stats.retire(&old);
            }
        });
        self.evictions += evicted;
        // Eviction is a cold path (at most once per record, usually far
        // rarer), so the macros' enabled check is negligible here.
        crate::counter!("livewell.evictions", evicted);
        crate::histogram!("livewell.eviction_batch", evicted);
    }

    /// Raises the placement floor. Centralized so the issue ledger can
    /// drop counters the scan can no longer reach — pruning eagerly (rather
    /// than lazily at the next placement) keeps the serialized state a pure
    /// function of the records processed, which checkpoint bit-transparency
    /// depends on.
    fn raise_floor(&mut self, level: i64) {
        debug_assert!(level >= self.floor, "the floor only rises");
        self.floor = level;
        if let Some(ledger) = self.issue.as_mut() {
            ledger.prune_to(level);
        }
    }

    /// Processes every record of an iterator.
    pub fn process_all<'a, I>(&mut self, records: I)
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        for record in records {
            self.process(record);
        }
    }

    /// Processes a contiguous slice of records — the sweep engine's entry
    /// point for arena-shared traces (`Arc<[TraceRecord]>` derefs straight
    /// to a slice, so many analyzer passes can walk one decode).
    pub fn process_slice(&mut self, records: &[TraceRecord]) {
        for record in records {
            self.process(record);
        }
    }

    /// Number of values currently held in the live well (the paper's working
    /// set concern: "billions of values will be entered into the live well").
    pub fn live_well_size(&self) -> usize {
        let regs = self.int_regs.iter().filter(|r| r.is_some()).count()
            + self.fp_regs.iter().filter(|r| r.is_some()).count();
        regs + self.mem.len()
    }

    /// The deepest completion level placed so far, if anything was placed.
    pub fn deepest_level(&self) -> Option<u64> {
        (self.deepest >= 0).then_some(self.deepest as u64)
    }

    /// Handles a conditional branch under the configured branch policy: a
    /// mispredicted (or unpredicted, under [`BranchPolicy::StallAlways`])
    /// branch firewalls the graph at the branch's resolution level.
    fn observe_branch(&mut self, record: &TraceRecord) {
        let mispredicted = match self.config.branch_policy() {
            BranchPolicy::Perfect => false,
            BranchPolicy::StallAlways => true,
            BranchPolicy::Predict(_) => match (record.branch_info(), self.predictor.as_mut()) {
                (Some(info), Some(predictor)) => {
                    !predictor.predict_and_train(record.pc(), info.taken, info.target)
                }
                // No recorded outcome: treated as correctly predicted.
                _ => false,
            },
        };
        if mispredicted {
            // The branch resolves one level after its operands are ready;
            // nothing fetched past it may execute earlier.
            let mut resolve = self.floor;
            for &src in record.srcs() {
                resolve = resolve.max(self.entry(src).avail);
            }
            let resolve = resolve + 1;
            for &src in record.srcs() {
                // The branch read the value (WAR now extends to the resolve
                // level) but is not a sharing consumer: sharing counts
                // value-creating operations fired by a token (§2.3).
                let entry = self.entry(src);
                entry.deepest_use = entry.deepest_use.max(resolve);
            }
            if resolve > self.floor {
                self.raise_floor(resolve);
                self.branch_firewalls += 1;
            }
        }
    }

    /// Number of branch-misprediction firewalls inserted so far.
    pub fn branch_firewalls(&self) -> u64 {
        self.branch_firewalls
    }

    /// Peak number of entries the live well has held (the paper's
    /// working-set concern; §3.2 discusses value-death tracking to bound
    /// this, we simply report it).
    pub fn peak_live_values(&self) -> usize {
        self.peak_live_values
    }

    /// The running branch predictor, if the policy uses one.
    pub fn predictor(&self) -> Option<&Predictor> {
        self.predictor.as_ref()
    }

    /// A cheap running snapshot: `(instructions seen, operations placed,
    /// critical path length, available parallelism)`. Lets callers trace
    /// how parallelism accumulates with trace length without finishing the
    /// pass.
    pub fn snapshot(&self) -> (u64, u64, u64, f64) {
        let cp = (self.deepest + 1).max(0) as u64;
        let par = if cp == 0 {
            0.0
        } else {
            self.placed as f64 / cp as f64
        };
        (self.total_records, self.placed, cp, par)
    }

    /// Number of trace records this analyzer has processed. After a
    /// [`resume_from`](LiveWell::resume_from), this is the number of records
    /// the driver must skip in the trace before feeding new ones.
    pub fn records_processed(&self) -> u64 {
        self.total_records
    }

    /// Memory locations evicted so far under
    /// [`AnalysisConfig::live_well_cap`]. Non-zero counts mean reported
    /// parallelism is an *upper bound*: a read of an evicted location looks
    /// like a preexisting value and drops the true dependence.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Times the instruction window displaced an instruction above the
    /// current floor (i.e. the window genuinely constrained placement).
    /// Telemetry-only and not checkpointed: counts since this analyzer was
    /// constructed or resumed.
    pub fn window_stalls(&self) -> u64 {
        self.window_stalls
    }

    /// Publishes the analyzer's current state into a telemetry registry:
    /// gauges for floor/deepest/live-well size, counters brought up to the
    /// analyzer's own totals, and an occupancy observation. Called
    /// periodically by drivers (per progress tick or checkpoint), so the hot
    /// loop itself carries no per-record instrumentation beyond its own
    /// plain fields.
    pub fn publish_telemetry(&self, registry: &crate::telemetry::Registry) {
        let (total, placed, cp, _) = self.snapshot();
        registry.gauge("livewell.records").set(total as i64);
        registry.gauge("livewell.placed").set(placed as i64);
        registry.gauge("livewell.critical_path").set(cp as i64);
        registry.gauge("livewell.floor").set(self.floor);
        registry
            .gauge("livewell.size")
            .set(self.live_well_size() as i64);
        registry
            .gauge("livewell.peak_size")
            .set(self.peak_live_values as i64);
        if let Some(cap) = self.config.live_well_cap() {
            registry.gauge("livewell.cap").set(cap as i64);
            // Occupancy in tenths of a percent: integer-valued, histogram
            // buckets resolve the interesting 50%..100% range well. The
            // table may transiently exceed the cap between eviction beats
            // (eviction triggers strictly above the cap, and embedders can
            // publish mid-record), so clamp: occupancy is a fill fraction,
            // not an overshoot gauge.
            let permille =
                ((self.mem.len() as u64).saturating_mul(1000) / cap.max(1) as u64).min(1000);
            registry
                .histogram("livewell.occupancy_permille")
                .observe(permille);
        }
        registry
            .histogram("livewell.occupancy")
            .observe(self.live_well_size() as u64);
        set_counter(registry, "livewell.window_stalls", self.window_stalls);
        set_counter(registry, "livewell.firewalls", self.firewalls);
        set_counter(registry, "livewell.branch_firewalls", self.branch_firewalls);
        set_counter(registry, "livewell.syscalls", self.syscalls);
    }

    /// Serializes the complete analyzer state as a checkpoint file
    /// (see [`checkpoint`](crate::checkpoint) for the format).
    ///
    /// Identical states produce identical bytes: every map is written in
    /// sorted key order, so a checkpoint can be compared or content-hashed.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the writer fails.
    pub fn save_checkpoint<W: Write>(&self, mut out: W) -> Result<(), CheckpointError> {
        let mut body = Vec::new();
        w_u64(&mut body, checkpoint::config_fingerprint(&self.config));

        // Version 2: the trace identity, written right after the config
        // fingerprint so a wrong-trace resume is rejected before any state
        // is even parsed into an analyzer.
        match self.trace_identity {
            Some(identity) => {
                w_u64(&mut body, 1);
                w_u64(&mut body, u64::from(identity.prefix_crc));
                w_u64(&mut body, identity.records);
            }
            None => w_u64(&mut body, 0),
        }

        w_u64(&mut body, self.total_records);
        w_u64(&mut body, self.placed);
        w_u64(&mut body, self.syscalls);
        w_u64(&mut body, self.firewalls);
        w_u64(&mut body, self.branch_firewalls);
        w_u64(&mut body, self.evictions);
        w_u64(&mut body, self.peak_live_values as u64);
        w_i64(&mut body, self.floor);
        w_i64(&mut body, self.deepest);

        w_u64(&mut body, self.class_placed.len() as u64);
        for &count in &self.class_placed {
            w_u64(&mut body, count);
        }

        for slot in self.int_regs.iter().chain(self.fp_regs.iter()) {
            match slot {
                Some(record) => {
                    w_u64(&mut body, 1);
                    w_value_record(&mut body, record);
                }
                None => w_u64(&mut body, 0),
            }
        }

        // Sorted-address order: the bytes are independent of the table's
        // in-memory layout, which is what keeps PGCP stable across the
        // paged and flat implementations.
        w_u64(&mut body, self.mem.len() as u64);
        self.mem.for_each_sorted(|addr, record| {
            w_u64(&mut body, addr);
            w_value_record(&mut body, record);
        });

        let slots: Vec<Option<i64>> = self.window.slot_levels().collect();
        w_u64(&mut body, slots.len() as u64);
        for slot in slots {
            match slot {
                Some(level) => {
                    w_u64(&mut body, 1);
                    w_i64(&mut body, level);
                }
                None => w_u64(&mut body, 0),
            }
        }

        let (counts, bin_width, total_ops, max_level) = self.profile.raw_parts();
        w_u64(&mut body, counts.len() as u64);
        for &count in counts {
            w_u64(&mut body, count);
        }
        w_u64(&mut body, bin_width);
        w_u64(&mut body, total_ops);
        match max_level {
            Some(level) => {
                w_u64(&mut body, 1);
                w_u64(&mut body, level);
            }
            None => w_u64(&mut body, 0),
        }

        match &self.predictor {
            Some(predictor) => {
                let (counters, history, predictions, mispredictions) = predictor.raw_state();
                w_u64(&mut body, 1);
                w_u64(&mut body, counters.len() as u64);
                body.extend_from_slice(counters);
                w_u64(&mut body, history);
                w_u64(&mut body, predictions);
                w_u64(&mut body, mispredictions);
            }
            None => w_u64(&mut body, 0),
        }

        match &self.issue {
            Some(ledger) => {
                w_u64(&mut body, 1);
                let mut levels: Vec<i64> = ledger.starts.keys().copied().collect();
                levels.sort_unstable();
                w_u64(&mut body, levels.len() as u64);
                for level in levels {
                    w_i64(&mut body, level);
                    w_u64(
                        &mut body,
                        u64::from(ledger.starts.get(&level).copied().unwrap_or(0)),
                    );
                }
            }
            None => w_u64(&mut body, 0),
        }

        match &self.value_stats {
            Some(stats) => {
                w_u64(&mut body, 1);
                w_dist(&mut body, &stats.lifetimes);
                w_dist(&mut body, &stats.sharing);
            }
            None => w_u64(&mut body, 0),
        }

        // Node ids are only meaningful to the explicit-graph builder; the
        // streaming analyzer stores usize::MAX, so only levels persist.
        for bound in [
            self.mem_ordering.deepest_store,
            self.mem_ordering.deepest_load,
        ] {
            match bound {
                Some((level, _)) => {
                    w_u64(&mut body, 1);
                    w_i64(&mut body, level);
                }
                None => w_u64(&mut body, 0),
            }
        }

        out.write_all(checkpoint::MAGIC)
            .map_err(CheckpointError::Io)?;
        out.write_all(&[checkpoint::VERSION])
            .map_err(CheckpointError::Io)?;
        out.write_all(&body).map_err(CheckpointError::Io)?;
        out.write_all(&crc32(&body).to_le_bytes())
            .map_err(CheckpointError::Io)?;
        Ok(())
    }

    /// Reconstructs an analyzer from a checkpoint written by
    /// [`save_checkpoint`](LiveWell::save_checkpoint). The supplied `config`
    /// must be the one the checkpoint was taken under (verified by
    /// fingerprint); feeding the resumed analyzer the remaining trace
    /// records produces a report identical to an uninterrupted pass.
    ///
    /// # Errors
    ///
    /// * [`CheckpointError::BadMagic`] / [`CheckpointError::UnsupportedVersion`]
    ///   — not a checkpoint this build can read.
    /// * [`CheckpointError::Truncated`] / [`CheckpointError::ChecksumMismatch`]
    ///   — the file was damaged in storage or transit.
    /// * [`CheckpointError::ConfigMismatch`] — `config` differs from the
    ///   checkpointed configuration.
    /// * [`CheckpointError::Corrupt`] — the bytes decode to an impossible
    ///   analyzer state.
    /// * [`CheckpointError::LimitExceeded`] — the file tripped a resource
    ///   governor limit (default limits with `PARAGRAPH_MAX_*` environment
    ///   overrides; see [`Limits::from_env`]).
    pub fn resume_from<R: Read>(
        input: R,
        config: AnalysisConfig,
    ) -> Result<LiveWellImpl<M>, CheckpointError> {
        let mut governor = ResourceGovernor::new(Limits::from_env());
        Self::resume_from_governed(input, config, &mut governor)
    }

    /// Like [`resume_from`](LiveWellImpl::resume_from) with an explicit
    /// [`ResourceGovernor`]. Every length the file *declares* is validated
    /// against the governor's caps before anything is allocated for it — a
    /// checkpoint claiming a multi-gigabyte live well is rejected while
    /// the claim is still just a varint.
    ///
    /// # Errors
    ///
    /// As [`resume_from`](LiveWellImpl::resume_from), with limit
    /// violations surfacing as [`CheckpointError::LimitExceeded`].
    pub fn resume_from_governed<R: Read>(
        mut input: R,
        config: AnalysisConfig,
        governor: &mut ResourceGovernor,
    ) -> Result<LiveWellImpl<M>, CheckpointError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if &magic != checkpoint::MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut version = [0u8; 1];
        input.read_exact(&mut version)?;
        if !(checkpoint::MIN_VERSION..=checkpoint::VERSION).contains(&version[0]) {
            return Err(CheckpointError::UnsupportedVersion(version[0]));
        }
        // The body is read through a hard cap so a hostile or runaway
        // stream cannot balloon the buffer past the allocation budget.
        let cap = governor.limits().max_alloc_bytes;
        let mut rest = Vec::new();
        input
            .by_ref()
            .take(cap.saturating_add(1))
            .read_to_end(&mut rest)
            .map_err(CheckpointError::from)?;
        if rest.len() as u64 > cap {
            return Err(CheckpointError::LimitExceeded(LimitViolation {
                limit: "max-alloc-bytes",
                what: "checkpoint body",
                actual: rest.len() as u64,
                cap,
            }));
        }
        governor
            .charge_alloc("checkpoint body", rest.len() as u64)
            .map_err(CheckpointError::LimitExceeded)?;
        if rest.len() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let (body, crc_bytes) = rest.split_at(rest.len() - 4);
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        let computed = crc32(body);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut r = body;
        let saved = r_u64(&mut r)?;
        let current = checkpoint::config_fingerprint(&config);
        if saved != current {
            return Err(CheckpointError::ConfigMismatch { saved, current });
        }

        // Version 1 predates the trace identity; it loads with none.
        let trace_identity = if version[0] >= 2 && r_flag(&mut r)? {
            let prefix_crc = r_u64(&mut r)?;
            let prefix_crc = u32::try_from(prefix_crc)
                .map_err(|_| CheckpointError::Corrupt("trace identity CRC exceeds 32 bits"))?;
            Some(TraceIdentity {
                prefix_crc,
                records: r_u64(&mut r)?,
            })
        } else {
            None
        };

        let total_records = r_u64(&mut r)?;
        let placed = r_u64(&mut r)?;
        let syscalls = r_u64(&mut r)?;
        let firewalls = r_u64(&mut r)?;
        let branch_firewalls = r_u64(&mut r)?;
        let evictions = r_u64(&mut r)?;
        let peak_live_values = r_usize(&mut r)?;
        let floor = r_i64(&mut r)?;
        let deepest = r_i64(&mut r)?;

        let class_count = r_usize(&mut r)?;
        if class_count != OpClass::ALL.len() {
            return Err(CheckpointError::Corrupt(
                "operation-class table has the wrong arity",
            ));
        }
        let mut class_placed = [0u64; OpClass::ALL.len()];
        for slot in &mut class_placed {
            *slot = r_u64(&mut r)?;
        }

        let mut int_regs = [None; 32];
        let mut fp_regs = [None; 32];
        for slot in int_regs.iter_mut().chain(fp_regs.iter_mut()) {
            if r_flag(&mut r)? {
                *slot = Some(r_value_record(&mut r)?);
            }
        }

        let mem_len = r_usize(&mut r)?;
        check_declared_count(governor, "memory table length", mem_len, r.len())?;
        let mut mem = M::default();
        let mut prev_addr: Option<u64> = None;
        for _ in 0..mem_len {
            let addr = r_u64(&mut r)?;
            if prev_addr.is_some_and(|p| p >= addr) {
                return Err(CheckpointError::Corrupt("memory table not sorted"));
            }
            prev_addr = Some(addr);
            mem.insert(addr, r_value_record(&mut r)?);
        }

        let slot_count = r_usize(&mut r)?;
        check_declared_count(governor, "window slot table length", slot_count, r.len())?;
        governor
            .charge_alloc("window slot table", (slot_count as u64).saturating_mul(16))
            .map_err(CheckpointError::LimitExceeded)?;
        let mut levels = Vec::with_capacity(slot_count.min(1 << 20));
        for _ in 0..slot_count {
            levels.push(if r_flag(&mut r)? {
                Some(r_i64(&mut r)?)
            } else {
                None
            });
        }
        let window = WindowLimiter::from_slot_levels(config.window(), levels)
            .ok_or(CheckpointError::Corrupt("window slots exceed window size"))?;

        let bin_count = r_usize(&mut r)?;
        check_declared_count(governor, "profile bin table length", bin_count, r.len())?;
        governor
            .charge_alloc("profile bin table", (bin_count as u64).saturating_mul(8))
            .map_err(CheckpointError::LimitExceeded)?;
        let mut counts = Vec::with_capacity(bin_count.min(1 << 20));
        for _ in 0..bin_count {
            counts.push(r_u64(&mut r)?);
        }
        let bin_width = r_u64(&mut r)?;
        let total_ops = r_u64(&mut r)?;
        let max_level = if r_flag(&mut r)? {
            Some(r_u64(&mut r)?)
        } else {
            None
        };
        let profile = ParallelismProfile::from_raw_parts(
            config.profile_bins(),
            counts,
            bin_width,
            total_ops,
            max_level,
        )
        .ok_or(CheckpointError::Corrupt(
            "parallelism profile is inconsistent",
        ))?;

        let predictor = if r_flag(&mut r)? {
            let BranchPolicy::Predict(kind) = config.branch_policy() else {
                return Err(CheckpointError::Corrupt(
                    "checkpoint has a predictor but the policy uses none",
                ));
            };
            let counter_len = r_usize(&mut r)?;
            check_declared_count(governor, "predictor counter length", counter_len, r.len())?;
            governor
                .charge_alloc("predictor counters", counter_len as u64)
                .map_err(CheckpointError::LimitExceeded)?;
            let mut counters = vec![0u8; counter_len];
            r.read_exact(&mut counters)?;
            let history = r_u64(&mut r)?;
            let predictions = r_u64(&mut r)?;
            let mispredictions = r_u64(&mut r)?;
            Some(
                Predictor::from_raw_state(kind, counters, history, predictions, mispredictions)
                    .ok_or(CheckpointError::Corrupt("predictor state is inconsistent"))?,
            )
        } else {
            if matches!(config.branch_policy(), BranchPolicy::Predict(_)) {
                return Err(CheckpointError::Corrupt(
                    "policy predicts branches but the checkpoint has no predictor",
                ));
            }
            None
        };

        let issue = if r_flag(&mut r)? {
            if config.issue_limit().is_none() {
                return Err(CheckpointError::Corrupt(
                    "checkpoint has issue counters but no issue limit is configured",
                ));
            }
            let entries = r_usize(&mut r)?;
            check_declared_count(governor, "issue counter table length", entries, r.len())?;
            let mut starts = FastMap::default();
            let mut prev: Option<i64> = None;
            for _ in 0..entries {
                let level = r_i64(&mut r)?;
                if prev.is_some_and(|p| p >= level) {
                    return Err(CheckpointError::Corrupt("issue counters not sorted"));
                }
                prev = Some(level);
                let count = u32::try_from(r_u64(&mut r)?)
                    .map_err(|_| CheckpointError::Corrupt("issue counter overflows u32"))?;
                starts.insert(level, count);
            }
            // Checkpoints from builds that predate ledger pruning may carry
            // counters at or below the floor; drop them so resumed and
            // uninterrupted runs converge to the same serialized state. On
            // checkpoints from pruning builds this is a no-op.
            starts.retain(|&level, _| level > floor);
            Some(IssueLedger {
                starts,
                // Cursor knowledge is not checkpointed — it is rebuilt
                // lazily and never changes placement results.
                min_nonfull: floor + 1,
                pruned_floor: floor,
            })
        } else {
            None
        };

        let value_stats = if r_flag(&mut r)? {
            if !config.value_stats() {
                return Err(CheckpointError::Corrupt(
                    "checkpoint has value statistics but they are not configured",
                ));
            }
            Some(ValueStats {
                lifetimes: r_dist(&mut r)?,
                sharing: r_dist(&mut r)?,
            })
        } else {
            if config.value_stats() {
                return Err(CheckpointError::Corrupt(
                    "value statistics configured but missing from the checkpoint",
                ));
            }
            None
        };

        let mut mem_ordering = MemOrdering::default();
        if r_flag(&mut r)? {
            mem_ordering.deepest_store = Some((r_i64(&mut r)?, usize::MAX));
        }
        if r_flag(&mut r)? {
            mem_ordering.deepest_load = Some((r_i64(&mut r)?, usize::MAX));
        }

        if !r.is_empty() {
            return Err(CheckpointError::Corrupt("trailing bytes after the state"));
        }

        Ok(LiveWellImpl {
            config,
            int_regs,
            fp_regs,
            mem,
            floor,
            deepest,
            window,
            profile,
            predictor,
            issue,
            value_stats,
            mem_ordering,
            total_records,
            placed,
            syscalls,
            firewalls,
            branch_firewalls,
            evictions,
            peak_live_values,
            class_placed,
            // Deliberately not restored: telemetry-only, counts since resume.
            window_stalls: 0,
            trace_identity,
        })
    }

    /// Exports this analyzer's final state as a [`SegmentOutcome`] for the
    /// parallel analyzer (see [`crate::parallel`]): the segment's relative
    /// floor/deepest levels, its exact per-level placement counts, the
    /// memory addresses it touched, and its counter totals.
    ///
    /// Returns `None` when the profile has coarsened (bin width > 1) —
    /// per-level counts are no longer recoverable, so the segment cannot be
    /// spliced exactly. The parallel driver prevents this by configuring
    /// segment analyzers with an effectively unbounded bin budget
    /// ([`crate::parallel::segment_config`]).
    pub(crate) fn into_segment_outcome(self) -> Option<SegmentOutcome> {
        let (counts, bin_width, total_ops, _max_level) = self.profile.raw_parts();
        if bin_width != 1 {
            return None;
        }
        debug_assert_eq!(total_ops, self.placed);
        let level_counts = counts.to_vec();
        let mut addrs = Vec::with_capacity(self.mem.len());
        self.mem.for_each_sorted(|addr, _| addrs.push(addr));
        Some(SegmentOutcome {
            floor: self.floor,
            deepest: self.deepest,
            level_counts,
            addrs,
            total_records: self.total_records,
            placed: self.placed,
            syscalls: self.syscalls,
            firewalls: self.firewalls,
            branch_firewalls: self.branch_firewalls,
            window_stalls: self.window_stalls,
            class_placed: self.class_placed,
        })
    }

    /// Splices the outcome of the trace segment that followed this
    /// analyzer's records onto this analyzer's state.
    ///
    /// Correctness rests on the *firewall-cut* property: this analyzer's
    /// last processed record must be a conservative system call, whose
    /// firewall raised the floor to the deepest placed level. At that point
    /// every live level — value availabilities, deepest uses, window slots,
    /// memory-ordering bounds, issue-ledger counters — is at or below the
    /// floor, so the `MAX(..., floor, ...)` placement rule absorbs all of
    /// it and a fresh analyzer over the remaining records places every
    /// operation exactly `floor + 1` levels lower than the sequential pass
    /// would. Merging therefore shifts the segment's levels up by
    /// `delta = floor + 1` and adds its counters; the memory-address union
    /// reproduces the sequential peak live-well size. See
    /// [`crate::parallel`] for the eligibility conditions the driver
    /// enforces before cutting.
    pub fn merge_segment(&mut self, seg: &SegmentOutcome) {
        debug_assert_eq!(
            self.floor, self.deepest,
            "segments must be cut immediately after a conservative syscall"
        );
        let delta = self.floor + 1;
        debug_assert!(delta >= 0);
        for (level, &count) in seg.level_counts.iter().enumerate() {
            if count > 0 {
                // Binned identically to the sequential pass: profile
                // coarsening is a pure function of the level/count multiset,
                // independent of recording order (pairwise bin folding is an
                // exact rebin).
                self.profile
                    .record_many((delta + level as i64) as u64, count);
            }
        }
        self.deepest = self.deepest.max(delta + seg.deepest);
        self.floor = delta + seg.floor;
        self.total_records += seg.total_records;
        self.placed += seg.placed;
        self.syscalls += seg.syscalls;
        self.firewalls += seg.firewalls;
        self.branch_firewalls += seg.branch_firewalls;
        self.window_stalls += seg.window_stalls;
        for (mine, theirs) in self.class_placed.iter_mut().zip(seg.class_placed.iter()) {
            *mine += theirs;
        }
        // Under the parallel-eligible configurations the memory table only
        // grows (no cap, no evictions) and only within placed records, so
        // the sequential peak is 64 registers plus the final table size —
        // the union of every segment's touched addresses.
        for &addr in &seg.addrs {
            self.mem.get_or_insert_preexisting(addr);
        }
        if self.placed > 0 {
            self.peak_live_values = self.peak_live_values.max(self.mem.len() + 64);
        }
    }

    /// Finishes the pass and produces the report.
    pub fn finish(mut self) -> AnalysisReport {
        // Retire every value still live so the distributions are complete.
        if let Some(mut stats) = self.value_stats.take() {
            for record in self.int_regs.iter().chain(self.fp_regs.iter()).flatten() {
                stats.retire(record);
            }
            self.mem.for_each_value(|record| stats.retire(record));
            self.value_stats = Some(stats);
        }
        let value_stats = self.value_stats.map(|s| (s.lifetimes, s.sharing));
        AnalysisReport::new(
            self.config,
            self.profile,
            self.total_records,
            self.placed,
            self.syscalls,
            self.firewalls,
            self.branch_firewalls,
            self.evictions,
            self.peak_live_values,
            self.predictor,
            value_stats,
            self.class_placed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RenameSet, WindowSize};
    use paragraph_isa::LatencyModel;
    use paragraph_trace::synthetic;

    fn run(records: &[TraceRecord], config: AnalysisConfig) -> AnalysisReport {
        let mut lw = LiveWell::new(config);
        lw.process_all(records);
        lw.finish()
    }

    #[test]
    fn figure1_dataflow_profile() {
        // Figure 1 / §2.3: profile [4, 2, 1, 1], critical path 4.
        let report = run(&synthetic::figure1(), AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 4);
        assert_eq!(
            report.profile().exact_counts(),
            Some(vec![4, 2, 1, 1]),
            "parallelism profile must match the paper's worked example"
        );
    }

    #[test]
    fn figure2_storage_dependency_profile() {
        // Figure 2 / §2.3: profile [2, 1, 2, 1, 1, 1], critical path 6.
        let config = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&synthetic::figure2(), config);
        assert_eq!(report.critical_path_length(), 6);
        assert_eq!(
            report.profile().exact_counts(),
            Some(vec![2, 1, 2, 1, 1, 1])
        );
    }

    #[test]
    fn figure2_with_register_renaming_recovers_figure1() {
        let config = AnalysisConfig::dataflow_limit().with_renames(RenameSet::registers_only());
        let report = run(&synthetic::figure2(), config);
        assert_eq!(report.critical_path_length(), 4);
        assert_eq!(report.profile().exact_counts(), Some(vec![4, 2, 1, 1]));
    }

    #[test]
    fn chain_is_fully_serial() {
        let report = run(&synthetic::chain(100), AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 100);
        assert_eq!(report.available_parallelism(), 1.0);
    }

    #[test]
    fn independent_ops_all_land_in_level_zero() {
        let report = run(
            &synthetic::independent(50),
            AnalysisConfig::dataflow_limit(),
        );
        assert_eq!(report.critical_path_length(), 1);
        assert_eq!(report.available_parallelism(), 50.0);
    }

    #[test]
    fn interleaved_chains_have_chain_count_parallelism() {
        let report = run(
            &synthetic::interleaved_chains(8, 25),
            AnalysisConfig::dataflow_limit(),
        );
        assert_eq!(report.critical_path_length(), 25);
        assert_eq!(report.available_parallelism(), 8.0);
    }

    #[test]
    fn window_of_one_serializes_independent_ops() {
        let config = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(1));
        let report = run(&synthetic::independent(20), config);
        assert_eq!(report.critical_path_length(), 20);
        assert_eq!(report.available_parallelism(), 1.0);
    }

    #[test]
    fn window_bounds_level_width() {
        for w in [2usize, 3, 7] {
            let config = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(w));
            let report = run(&synthetic::independent(50), config);
            let counts = report.profile().exact_counts().unwrap();
            assert!(
                counts.iter().all(|&c| c <= w as u64),
                "window {w} must bound level width, got {counts:?}"
            );
            assert_eq!(counts.iter().sum::<u64>(), 50);
        }
    }

    #[test]
    fn window_monotonically_exposes_parallelism() {
        let trace = synthetic::random_trace(2000, 11);
        let mut last = 0.0;
        for w in [1usize, 4, 16, 64, 256, 1024, 4096] {
            let config = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(w));
            let par = run(&trace, config).available_parallelism();
            assert!(
                par >= last - 1e-9,
                "parallelism should not decrease with window size ({w}: {par} < {last})"
            );
            last = par;
        }
        let unlimited = run(&trace, AnalysisConfig::dataflow_limit()).available_parallelism();
        assert!(unlimited >= last - 1e-9);
    }

    #[test]
    fn conservative_syscall_inserts_firewall() {
        // Two independent ops with a syscall between them: under the
        // conservative policy the second op must land below the syscall.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::syscall(1, &[], None),
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(2)),
        ];
        let report = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(report.firewalls(), 1);
        assert_eq!(report.critical_path_length(), 2);
        assert_eq!(report.profile().exact_counts(), Some(vec![2, 1]));

        let optimistic =
            AnalysisConfig::dataflow_limit().with_syscall_policy(SyscallPolicy::Optimistic);
        let report = run(&records, optimistic);
        assert_eq!(report.firewalls(), 0);
        assert_eq!(report.critical_path_length(), 1);
        assert_eq!(report.placed_ops(), 2); // the syscall is ignored
        assert_eq!(report.syscalls(), 1); // ...but still counted
    }

    #[test]
    fn optimistic_never_exceeds_conservative_critical_path() {
        let trace = synthetic::random_trace(3000, 5);
        let cons = run(&trace, AnalysisConfig::dataflow_limit());
        let opt = run(
            &trace,
            AnalysisConfig::dataflow_limit().with_syscall_policy(SyscallPolicy::Optimistic),
        );
        assert!(opt.critical_path_length() <= cons.critical_path_length());
    }

    #[test]
    fn latencies_stretch_the_critical_path() {
        // A chain of 3 multiplies: 3 * 6 = 18 levels under Table 1.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntMul, &[], Loc::int(1)),
            TraceRecord::compute(1, OpClass::IntMul, &[Loc::int(1)], Loc::int(1)),
            TraceRecord::compute(2, OpClass::IntMul, &[Loc::int(1)], Loc::int(1)),
        ];
        let report = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 18);

        let unit = AnalysisConfig::dataflow_limit().with_latency(LatencyModel::unit());
        let report = run(&records, unit);
        assert_eq!(report.critical_path_length(), 3);
    }

    #[test]
    fn memory_war_dependency_without_renaming() {
        // load from addr 0, then store a new (independent) value to addr 0.
        // Without memory renaming the store must follow the load's use.
        let records = vec![
            TraceRecord::load(0, 0, None, Loc::int(1)),
            TraceRecord::compute(1, OpClass::IntAlu, &[Loc::int(1)], Loc::int(2)),
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(3)),
            TraceRecord::store(3, 0, Loc::int(3), None),
        ];
        let no_rename = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&records, no_rename);
        // load@0, alu@1, li@0, store must wait for alu's use of the old
        // value? No: Ddest of mem[0] is max(load level)=0 ... the load reads
        // mem[0]; the *use* of mem[0]'s value is the load itself (level 0).
        // store: max(floor, src li@0, Ddest=0) + 1 = 1... but WAW with the
        // original value's creation (-1) is subsumed. Critical path is the
        // alu chain: 2.
        assert_eq!(report.critical_path_length(), 2);

        // Now make a later reader deepen the old value's use:
        let records = vec![
            TraceRecord::load(0, 0, None, Loc::int(1)), // reads mem[0] @0
            TraceRecord::compute(1, OpClass::IntAlu, &[Loc::int(1)], Loc::int(2)), // @1
            TraceRecord::load(2, 0, None, Loc::int(4)), // reads mem[0] @0
            TraceRecord::compute(3, OpClass::IntAlu, &[Loc::int(2)], Loc::int(5)), // @2
            TraceRecord::compute(4, OpClass::IntAlu, &[Loc::int(5), Loc::int(4)], Loc::int(6)), // @3 reads mem[0]-value via r4? no: reads r5,r4
            TraceRecord::store(5, 0, Loc::int(6), None), // overwrites mem[0]
        ];
        let no_rename = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&records, no_rename.clone());
        // The store depends on r6 (@4): placed at 5. The WAR on mem[0]
        // (deepest use @0 by the loads) is subsumed. Renaming changes nothing
        // here:
        let renamed = run(
            &records,
            AnalysisConfig::dataflow_limit().with_renames(RenameSet::all()),
        );
        assert_eq!(
            report.critical_path_length(),
            renamed.critical_path_length()
        );
    }

    #[test]
    fn war_on_register_delays_overwrite() {
        // r1 is created at level 0, read by a long-latency op completing at
        // level 12; overwriting r1 without renaming must land after 12.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)), // @0
            TraceRecord::compute(1, OpClass::IntDiv, &[Loc::int(1)], Loc::int(2)), // @12
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(1)), // WAR
        ];
        let no_rename = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&records, no_rename);
        // Ldest(overwrite) = max(-1 floor, Ddest=12) + 1 = 13 -> CP 14.
        assert_eq!(report.critical_path_length(), 14);

        let renamed = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(renamed.critical_path_length(), 13); // just the div chain
    }

    #[test]
    fn waw_without_intervening_read_still_orders() {
        // Two writes to r1, no reads. Without renaming the second write must
        // be placed after the first value's creation (deepest_use == avail).
        let records = vec![
            TraceRecord::compute(0, OpClass::IntDiv, &[], Loc::int(1)), // completes @11
            TraceRecord::compute(1, OpClass::IntAlu, &[], Loc::int(1)), // WAW
        ];
        let no_rename = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&records, no_rename);
        assert_eq!(report.critical_path_length(), 13); // placed @12, after the div
        let renamed = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(renamed.critical_path_length(), 12); // just the div
    }

    #[test]
    fn stack_vs_data_renaming_is_segment_sensitive() {
        use paragraph_trace::SegmentMap;
        // A memory word is read *deep* in the graph (its load waits for a
        // divide chain), then overwritten by an independent store. With
        // registers+stack renamed, only the data-segment version orders.
        let mk = |addr: u64| {
            vec![
                TraceRecord::compute(0, OpClass::IntDiv, &[], Loc::int(1)), // @11
                TraceRecord::load(1, addr, Some(Loc::int(1)), Loc::int(2)), // @12, deep read
                TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(3)), // @0
                TraceRecord::store(3, addr, Loc::int(3), None),             // WAR on mem[addr]
            ]
        };
        let segments = SegmentMap::new(100, 1000);
        let config = AnalysisConfig::dataflow_limit()
            .with_renames(RenameSet::registers_and_stack())
            .with_segments(segments);
        let stack_report = run(&mk(2000), config.clone());
        let data_report = run(&mk(50), config);
        assert!(
            data_report.critical_path_length() > stack_report.critical_path_length(),
            "data-segment WAR must order when only stack is renamed"
        );
    }

    #[test]
    fn preexisting_values_do_not_delay_computation() {
        // A load of a never-written DATA word is placed in the first level.
        let records = vec![TraceRecord::load(0, 77, None, Loc::int(1))];
        let report = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 1);
        assert_eq!(report.profile().exact_counts(), Some(vec![1]));
    }

    #[test]
    fn branches_are_observed_but_not_placed() {
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::branch(1, &[Loc::int(1)]),
            TraceRecord::jump(2, &[]),
        ];
        let report = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(report.total_records(), 3);
        assert_eq!(report.placed_ops(), 1);
    }

    #[test]
    fn live_well_size_tracks_locations() {
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        assert_eq!(lw.live_well_size(), 0);
        lw.process(&TraceRecord::compute(
            0,
            OpClass::IntAlu,
            &[Loc::int(3)],
            Loc::int(1),
        ));
        // r3 (preexisting) and r1 (created).
        assert_eq!(lw.live_well_size(), 2);
        lw.process(&TraceRecord::store(1, 9, Loc::int(1), None));
        assert_eq!(lw.live_well_size(), 3);
        assert_eq!(lw.deepest_level(), Some(1));
    }

    #[test]
    fn stall_always_branches_serialize_around_resolution() {
        use crate::branch::BranchPolicy;
        // Independent ops around a branch: with perfect control flow they
        // share level 0; stalling on every branch pushes the later one down.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::branch_outcome(1, &[Loc::int(1)], true, 0),
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(2)),
        ];
        let perfect = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(perfect.critical_path_length(), 1);
        assert_eq!(perfect.branch_firewalls(), 0);

        let stall = AnalysisConfig::dataflow_limit().with_branch_policy(BranchPolicy::StallAlways);
        let report = run(&records, stall);
        // Branch resolves at level 1 (its source completes at 0); the next
        // op lands at 2.
        assert_eq!(report.critical_path_length(), 3);
        assert_eq!(report.branch_firewalls(), 1);
    }

    #[test]
    fn predicted_branches_do_not_firewall() {
        use crate::branch::{BranchPolicy, PredictorKind};
        // A loop-like stream of always-taken branches: always-taken predicts
        // them all; never-taken misses them all.
        let mut records = Vec::new();
        for i in 0..20u64 {
            records.push(TraceRecord::compute(
                2 * i,
                OpClass::IntAlu,
                &[],
                Loc::int(1),
            ));
            records.push(TraceRecord::branch_outcome(
                2 * i + 1,
                &[Loc::int(1)],
                true,
                0,
            ));
        }
        let good = run(
            &records,
            AnalysisConfig::dataflow_limit()
                .with_branch_policy(BranchPolicy::Predict(PredictorKind::AlwaysTaken)),
        );
        assert_eq!(good.branch_firewalls(), 0);
        assert_eq!(good.predictor().unwrap().mispredictions(), 0);
        let bad = run(
            &records,
            AnalysisConfig::dataflow_limit()
                .with_branch_policy(BranchPolicy::Predict(PredictorKind::NeverTaken)),
        );
        assert_eq!(bad.predictor().unwrap().mispredictions(), 20);
        assert!(bad.critical_path_length() > good.critical_path_length());
    }

    #[test]
    fn branches_without_outcomes_are_treated_as_predicted() {
        use crate::branch::{BranchPolicy, PredictorKind};
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::branch(1, &[Loc::int(1)]), // no outcome recorded
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(2)),
        ];
        let report = run(
            &records,
            AnalysisConfig::dataflow_limit()
                .with_branch_policy(BranchPolicy::Predict(PredictorKind::NeverTaken)),
        );
        assert_eq!(report.branch_firewalls(), 0);
        assert_eq!(report.critical_path_length(), 1);
    }

    #[test]
    fn issue_limit_bounds_starts_per_level() {
        // 30 independent unit-latency ops on a 4-wide machine: ceil(30/4)
        // levels, at most 4 completions per level.
        let config = AnalysisConfig::dataflow_limit()
            .with_latency(LatencyModel::unit())
            .with_issue_limit(4);
        let report = run(&synthetic::independent(30), config);
        assert_eq!(report.critical_path_length(), 8); // ceil(30/4)
        let counts = report.profile().exact_counts().unwrap();
        assert!(counts.iter().all(|&c| c <= 4));
        assert_eq!(counts.iter().sum::<u64>(), 30);
    }

    #[test]
    fn issue_limit_one_fully_serializes() {
        let config = AnalysisConfig::dataflow_limit()
            .with_latency(LatencyModel::unit())
            .with_issue_limit(1);
        let report = run(&synthetic::independent(12), config);
        assert_eq!(report.critical_path_length(), 12);
        assert_eq!(report.available_parallelism(), 1.0);
    }

    #[test]
    fn issue_limit_is_monotone() {
        let trace = synthetic::random_trace(1500, 17);
        let mut last = u64::MAX;
        for limit in [1usize, 2, 4, 8, 16, 64] {
            let config = AnalysisConfig::dataflow_limit().with_issue_limit(limit);
            let cp = run(&trace, config).critical_path_length();
            assert!(cp <= last, "limit {limit}: {cp} > {last}");
            last = cp;
        }
        let unlimited = run(&trace, AnalysisConfig::dataflow_limit()).critical_path_length();
        assert!(unlimited <= last);
    }

    #[test]
    fn issue_ledger_stays_bounded_on_million_level_critical_paths() {
        // Regression: the per-level start counters used to grow one entry
        // per DDG level and were never pruned, so issue-limited runs leaked
        // memory linearly in critical-path length. A serial chain under a
        // bounded window drives the floor up right behind the frontier; the
        // ledger must track only the live band above the floor, not all
        // 10^6 levels.
        let n = 1_000_000usize;
        let window = 1024usize;
        let config = AnalysisConfig::dataflow_limit()
            .with_latency(LatencyModel::unit())
            .with_issue_limit(1)
            .with_window(WindowSize::bounded(window));
        let mut lw = LiveWell::new(config);
        let mut peak_entries = 0usize;
        for (i, record) in synthetic::chain(n).iter().enumerate() {
            lw.process(record);
            if i % 4096 == 0 {
                if let Some(ledger) = &lw.issue {
                    peak_entries = peak_entries.max(ledger.len());
                }
            }
        }
        if let Some(ledger) = &lw.issue {
            peak_entries = peak_entries.max(ledger.len());
        }
        // The live band is at most the window depth plus the in-flight
        // frontier; 4x leaves slack without letting a leak sneak through
        // (an unpruned ledger would hold ~10^6 entries here).
        assert!(
            peak_entries <= 4 * window,
            "issue ledger leaked: peak {peak_entries} entries for window {window}"
        );
        let report = lw.finish();
        assert_eq!(report.critical_path_length(), n as u64);
    }

    #[test]
    fn issue_ledger_cursor_matches_linear_scan_semantics() {
        // The cursor only skips levels already proven full, so placements
        // (and therefore the whole profile) must be identical to the naive
        // scan the tests above pin down. Mix firewalls (conservative
        // syscalls) into an issue-limited run so pruning and scanning
        // interleave, then cross-check against the explicit-graph-free
        // expectations: every level holds at most `limit` starts and the
        // op count is conserved.
        let mut records = Vec::new();
        for i in 0..600u64 {
            if i % 97 == 0 {
                records.push(TraceRecord::syscall(i, &[], None));
            } else {
                records.push(TraceRecord::compute(
                    i,
                    OpClass::IntAlu,
                    &[],
                    Loc::int((i % 30 + 1) as u8),
                ));
            }
        }
        let config = AnalysisConfig::dataflow_limit()
            .with_latency(LatencyModel::unit())
            .with_issue_limit(3)
            .with_syscall_policy(SyscallPolicy::Conservative);
        let report = run(&records, config);
        let counts = report.profile().exact_counts().unwrap();
        assert!(counts.iter().all(|&c| c <= 3), "issue limit violated");
        assert_eq!(counts.iter().sum::<u64>(), report.placed_ops());
    }

    #[test]
    fn occupancy_permille_is_clamped_to_1000() {
        use crate::telemetry::Registry;
        let config = AnalysisConfig::dataflow_limit().with_live_well_cap(64);
        let mut lw = LiveWell::new(config);
        // Force the table past its cap, as can happen transiently between
        // eviction beats: occupancy must still read as a fill fraction.
        for addr in 0..200u64 {
            lw.mem.insert(addr, ValueRecord::preexisting());
        }
        let registry = Registry::new();
        lw.publish_telemetry(&registry);
        let hist = registry.histogram("livewell.occupancy_permille");
        assert_eq!(hist.count(), 1);
        assert!(
            hist.sum() <= 1000,
            "occupancy_permille exceeded 1000: {}",
            hist.sum()
        );
    }

    #[test]
    fn value_stats_capture_lifetimes_and_sharing() {
        // One producer read by three consumers, all unit latency.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)), // @0
            TraceRecord::compute(1, OpClass::IntAlu, &[Loc::int(1)], Loc::int(2)), // @1
            TraceRecord::compute(2, OpClass::IntAlu, &[Loc::int(1)], Loc::int(3)), // @1
            TraceRecord::compute(3, OpClass::IntAlu, &[Loc::int(1)], Loc::int(4)), // @1
        ];
        let config = AnalysisConfig::dataflow_limit()
            .with_latency(LatencyModel::unit())
            .with_value_stats(true);
        let report = run(&records, config);
        let sharing = report.sharing_degrees().unwrap();
        assert_eq!(sharing.count(), 4);
        assert_eq!(sharing.frequency(3), 1); // the producer
        assert_eq!(sharing.frequency(0), 3); // the leaves
        let lifetimes = report.value_lifetimes().unwrap();
        assert_eq!(lifetimes.frequency(1), 1); // producer lives 1 level
        assert_eq!(lifetimes.frequency(0), 3); // leaves die at creation
    }

    #[test]
    fn value_stats_match_explicit_graph() {
        use crate::ddg::Ddg;
        let trace = synthetic::random_trace(800, 23);
        let config = AnalysisConfig::dataflow_limit().with_value_stats(true);
        let report = run(&trace, config.clone());
        let ddg = Ddg::from_records(&trace, &config);
        assert_eq!(
            report.value_lifetimes().unwrap(),
            ddg.value_lifetimes(),
            "streaming and explicit lifetimes must agree"
        );
        assert_eq!(
            report.sharing_degrees().unwrap(),
            &ddg.sharing_degrees(),
            "streaming and explicit sharing must agree"
        );
    }

    #[test]
    fn value_stats_disabled_by_default() {
        let report = run(&synthetic::chain(5), AnalysisConfig::dataflow_limit());
        assert!(report.value_lifetimes().is_none());
        assert!(report.sharing_degrees().is_none());
    }

    #[test]
    fn no_disambiguation_serializes_memory_traffic() {
        use crate::memmodel::MemoryModel;
        // Two loads and two stores at distinct addresses: independent under
        // perfect disambiguation, chained without it.
        let records = vec![
            TraceRecord::store(0, 10, Loc::int(1), None),
            TraceRecord::load(1, 20, None, Loc::int(2)),
            TraceRecord::store(2, 30, Loc::int(3), None),
            TraceRecord::load(3, 40, None, Loc::int(4)),
        ];
        let perfect = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(perfect.critical_path_length(), 1);
        let config =
            AnalysisConfig::dataflow_limit().with_memory_model(MemoryModel::NoDisambiguation);
        let report = run(&records, config);
        // store@0; load waits for it @1; store waits for both @2; load @3.
        assert_eq!(report.critical_path_length(), 4);
        assert_eq!(report.profile().exact_counts(), Some(vec![1, 1, 1, 1]));
    }

    #[test]
    fn no_disambiguation_leaves_alu_traffic_alone() {
        use crate::memmodel::MemoryModel;
        let config =
            AnalysisConfig::dataflow_limit().with_memory_model(MemoryModel::NoDisambiguation);
        let report = run(&synthetic::independent(20), config);
        assert_eq!(report.critical_path_length(), 1);
    }

    #[test]
    fn loads_between_stores_may_overlap_without_disambiguation() {
        use crate::memmodel::MemoryModel;
        // Loads only conflict with stores, not each other.
        let records = vec![
            TraceRecord::load(0, 1, None, Loc::int(1)),
            TraceRecord::load(1, 2, None, Loc::int(2)),
            TraceRecord::load(2, 3, None, Loc::int(3)),
        ];
        let config =
            AnalysisConfig::dataflow_limit().with_memory_model(MemoryModel::NoDisambiguation);
        let report = run(&records, config);
        assert_eq!(report.critical_path_length(), 1);
        assert_eq!(report.available_parallelism(), 3.0);
    }

    #[test]
    fn snapshots_track_the_running_analysis() {
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        assert_eq!(lw.snapshot(), (0, 0, 0, 0.0));
        for record in synthetic::interleaved_chains(4, 10) {
            lw.process(&record);
        }
        let (seen, placed, cp, par) = lw.snapshot();
        assert_eq!(seen, 40);
        assert_eq!(placed, 40);
        assert_eq!(cp, 10);
        assert_eq!(par, 4.0);
        let report = lw.finish();
        assert_eq!(report.critical_path_length(), cp);
    }

    /// Checkpoint at `split`, resume, finish both ways: the reports (and the
    /// checkpoint bytes themselves) must be bit-identical.
    fn assert_checkpoint_transparent(
        records: &[TraceRecord],
        config: AnalysisConfig,
        split: usize,
    ) {
        let mut uninterrupted = LiveWell::new(config.clone());
        uninterrupted.process_all(records);

        let mut first = LiveWell::new(config.clone());
        first.process_all(&records[..split]);
        let mut bytes = Vec::new();
        first.save_checkpoint(&mut bytes).unwrap();
        let mut again = Vec::new();
        first.save_checkpoint(&mut again).unwrap();
        assert_eq!(bytes, again, "checkpointing must be deterministic");

        let mut resumed = LiveWell::resume_from(&bytes[..], config).unwrap();
        assert_eq!(resumed.records_processed(), split as u64);
        resumed.process_all(&records[split..]);

        let mut resumed_bytes = Vec::new();
        resumed.save_checkpoint(&mut resumed_bytes).unwrap();
        let mut direct_bytes = Vec::new();
        uninterrupted.save_checkpoint(&mut direct_bytes).unwrap();
        assert_eq!(
            resumed_bytes, direct_bytes,
            "resumed state must equal the uninterrupted state"
        );
        assert_eq!(resumed.finish().to_json(), uninterrupted.finish().to_json());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_at_the_dataflow_limit() {
        let trace = synthetic::random_trace(1200, 41);
        assert_checkpoint_transparent(&trace, AnalysisConfig::dataflow_limit(), 700);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_under_every_feature() {
        use crate::branch::{BranchPolicy, PredictorKind};
        use crate::memmodel::MemoryModel;
        let trace = synthetic::random_trace(900, 7);
        let config = AnalysisConfig::dataflow_limit()
            .with_window(WindowSize::bounded(48))
            .with_issue_limit(4)
            .with_branch_policy(BranchPolicy::Predict(PredictorKind::Gshare {
                index_bits: 8,
            }))
            .with_value_stats(true)
            .with_memory_model(MemoryModel::NoDisambiguation)
            .with_renames(RenameSet::none());
        for split in [1, 450, 899] {
            assert_checkpoint_transparent(&trace, config.clone(), split);
        }
    }

    #[test]
    fn checkpoint_rejects_a_different_configuration() {
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        lw.process_all(&synthetic::chain(20));
        let mut bytes = Vec::new();
        lw.save_checkpoint(&mut bytes).unwrap();
        let other = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(8));
        assert!(matches!(
            LiveWell::resume_from(&bytes[..], other),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn checkpoint_rejects_damage() {
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        lw.process_all(&synthetic::random_trace(100, 3));
        let mut bytes = Vec::new();
        lw.save_checkpoint(&mut bytes).unwrap();

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            LiveWell::resume_from(&flipped[..], AnalysisConfig::dataflow_limit()),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            LiveWell::resume_from(&bytes[..bytes.len() - 9], AnalysisConfig::dataflow_limit()),
            Err(CheckpointError::ChecksumMismatch { .. } | CheckpointError::Truncated)
        ));

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            LiveWell::resume_from(&wrong_magic[..], AnalysisConfig::dataflow_limit()),
            Err(CheckpointError::BadMagic)
        ));

        let mut wrong_version = bytes;
        wrong_version[4] = 9;
        assert!(matches!(
            LiveWell::resume_from(&wrong_version[..], AnalysisConfig::dataflow_limit()),
            Err(CheckpointError::UnsupportedVersion(9))
        ));
    }

    /// Builds a checkpoint that is perfectly well-formed up to the memory
    /// table, then *declares* a table of `mem_len` entries it never
    /// supplies. The loader must reject the claim while it is still just a
    /// varint — before sizing any buffer from it.
    fn checkpoint_declaring_mem_len(config: &AnalysisConfig, mem_len: u64) -> Vec<u8> {
        let mut body = Vec::new();
        w_u64(&mut body, checkpoint::config_fingerprint(config));
        w_u64(&mut body, 0); // no trace identity
        for _ in 0..7 {
            w_u64(&mut body, 0); // totals and counters
        }
        w_i64(&mut body, 0); // floor
        w_i64(&mut body, 0); // deepest
        w_u64(&mut body, OpClass::ALL.len() as u64);
        for _ in OpClass::ALL {
            w_u64(&mut body, 0);
        }
        for _ in 0..64 {
            w_u64(&mut body, 0); // empty register files
        }
        w_u64(&mut body, mem_len);
        let mut file = Vec::new();
        file.extend_from_slice(checkpoint::MAGIC);
        file.push(checkpoint::VERSION);
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc32(&body).to_le_bytes());
        file
    }

    #[test]
    fn checkpoint_declaring_a_huge_live_well_is_rejected_before_allocation() {
        use paragraph_trace::govern::{Limits, ResourceGovernor};
        let config = AnalysisConfig::dataflow_limit();
        let file = checkpoint_declaring_mem_len(&config, 1 << 32);
        let mut governor = ResourceGovernor::new(Limits::default());
        let err = LiveWell::resume_from_governed(&file[..], config, &mut governor).unwrap_err();
        let CheckpointError::LimitExceeded(v) = err else {
            panic!("expected LimitExceeded, got {err:?}");
        };
        assert_eq!(v.what, "memory table length");
        assert_eq!(v.actual, 1 << 32);
        // Nothing was ever allocated on the claim's behalf: the peak covers
        // only the (tiny) body buffer, not the declared four-billion-entry
        // table.
        assert!(
            governor.peak_alloc() < 4096,
            "peak {}",
            governor.peak_alloc()
        );
    }

    #[test]
    fn checkpoint_declared_count_past_the_body_is_corrupt_not_fatal() {
        // A declared count that fits the governor cap but exceeds the
        // remaining body is plain corruption, caught before the read loop.
        let config = AnalysisConfig::dataflow_limit();
        let file = checkpoint_declaring_mem_len(&config, 100_000);
        assert!(matches!(
            LiveWell::resume_from(&file[..], config),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn checkpoint_body_over_the_alloc_cap_is_rejected_without_buffering() {
        use paragraph_trace::govern::{Limits, ResourceGovernor};
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        lw.process_all(&synthetic::random_trace(200, 9));
        let mut bytes = Vec::new();
        lw.save_checkpoint(&mut bytes).unwrap();

        let mut governor = ResourceGovernor::new(Limits {
            max_alloc_bytes: 16,
            ..Limits::default()
        });
        let err = LiveWell::resume_from_governed(
            &bytes[..],
            AnalysisConfig::dataflow_limit(),
            &mut governor,
        )
        .unwrap_err();
        let CheckpointError::LimitExceeded(v) = err else {
            panic!("expected LimitExceeded, got {err:?}");
        };
        assert_eq!(v.what, "checkpoint body");
        assert_eq!(v.limit, "max-alloc-bytes");
    }

    #[test]
    fn governed_resume_accepts_a_legitimate_checkpoint() {
        use paragraph_trace::govern::{Limits, ResourceGovernor};
        let trace = synthetic::random_trace(400, 13);
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        lw.process_all(&trace[..200]);
        let mut bytes = Vec::new();
        lw.save_checkpoint(&mut bytes).unwrap();

        let mut governor = ResourceGovernor::new(Limits::default());
        let mut resumed = LiveWell::resume_from_governed(
            &bytes[..],
            AnalysisConfig::dataflow_limit(),
            &mut governor,
        )
        .unwrap();
        resumed.process_all(&trace[200..]);
        let mut uninterrupted = LiveWell::new(AnalysisConfig::dataflow_limit());
        uninterrupted.process_all(&trace);
        assert_eq!(resumed.finish().to_json(), uninterrupted.finish().to_json());
    }

    #[test]
    fn version_1_checkpoints_still_load() {
        // Forge a version-1 file from a version-2 save without an identity:
        // drop the identity flag byte after the config fingerprint, rewrite
        // the version byte, recompute the CRC. Old checkpoints must keep
        // loading — and resume with no identity to verify.
        let trace = synthetic::random_trace(300, 11);
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        lw.process_all(&trace[..150]);
        let mut v2 = Vec::new();
        lw.save_checkpoint(&mut v2).unwrap();

        let body = &v2[5..v2.len() - 4];
        let fp_len = 1 + body.iter().take_while(|b| **b & 0x80 != 0).count();
        assert_eq!(body[fp_len], 0, "no-identity save must write flag 0");
        let mut v1_body = body.to_vec();
        v1_body.remove(fp_len);
        let mut v1 = Vec::new();
        v1.extend_from_slice(checkpoint::MAGIC);
        v1.push(1);
        v1.extend_from_slice(&v1_body);
        v1.extend_from_slice(&crc32(&v1_body).to_le_bytes());

        let mut resumed = LiveWell::resume_from(&v1[..], AnalysisConfig::dataflow_limit()).unwrap();
        assert_eq!(resumed.trace_identity(), None);
        assert!(resumed
            .verify_trace_identity(&checkpoint::TraceIdentity::of_records(&trace))
            .is_ok());
        resumed.process_all(&trace[150..]);
        let mut direct = LiveWell::new(AnalysisConfig::dataflow_limit());
        direct.process_all(&trace);
        assert_eq!(resumed.finish().to_json(), direct.finish().to_json());
    }

    #[test]
    fn trace_identity_round_trips_and_rejects_the_wrong_trace() {
        let trace = synthetic::random_trace(400, 23);
        let other = synthetic::random_trace(400, 24);
        let identity = checkpoint::TraceIdentity::of_records(&trace);

        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        lw.set_trace_identity(Some(identity));
        lw.process_all(&trace[..200]);
        let mut bytes = Vec::new();
        lw.save_checkpoint(&mut bytes).unwrap();

        let resumed = LiveWell::resume_from(&bytes[..], AnalysisConfig::dataflow_limit()).unwrap();
        assert_eq!(resumed.trace_identity(), Some(identity));
        assert!(resumed.verify_trace_identity(&identity).is_ok());
        let wrong = checkpoint::TraceIdentity::of_records(&other);
        assert!(matches!(
            resumed.verify_trace_identity(&wrong),
            Err(CheckpointError::TraceMismatch { saved, current })
                if saved == identity && current == wrong
        ));

        // The identity must survive a resume: a re-save is still guarded.
        let mut resave = Vec::new();
        resumed.save_checkpoint(&mut resave).unwrap();
        assert_eq!(bytes, resave);
    }

    #[test]
    fn live_well_cap_bounds_memory_and_reports_evictions() {
        // Stores to 500 distinct addresses under a cap of 64: the table must
        // stay bounded and the loss must be reported.
        let records: Vec<TraceRecord> = (0..500)
            .map(|i| TraceRecord::store(i, 8 * i, Loc::int(1), None))
            .collect();
        let config = AnalysisConfig::dataflow_limit().with_live_well_cap(64);
        let mut lw = LiveWell::new(config);
        lw.process_all(&records);
        assert!(
            lw.mem.len() <= 64,
            "table exceeded the cap: {}",
            lw.mem.len()
        );
        assert!(lw.evictions() > 0);
        let report = lw.finish();
        assert!(report.live_well_evictions() > 0);
        assert!(report.to_string().contains("CAVEAT"));
        assert!(report.to_json().contains("\"live_well_evictions\":"));
    }

    #[test]
    fn uncapped_runs_report_zero_evictions() {
        let report = run(
            &synthetic::random_trace(500, 9),
            AnalysisConfig::dataflow_limit(),
        );
        assert_eq!(report.live_well_evictions(), 0);
        assert!(!report.to_string().contains("CAVEAT"));
    }

    #[test]
    fn capped_analysis_still_checkpoints_transparently() {
        let records: Vec<TraceRecord> = (0..400)
            .map(|i| TraceRecord::store(i, 16 * (i % 200), Loc::int(1), None))
            .collect();
        let config = AnalysisConfig::dataflow_limit().with_live_well_cap(32);
        assert_checkpoint_transparent(&records, config, 250);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let records: Vec<TraceRecord> = (0..300)
            .map(|i| TraceRecord::store(i, 4 * i, Loc::int(1), None))
            .collect();
        let config = AnalysisConfig::dataflow_limit().with_live_well_cap(50);
        let run_once = || {
            let mut lw = LiveWell::new(config.clone());
            lw.process_all(&records);
            let mut bytes = Vec::new();
            lw.save_checkpoint(&mut bytes).unwrap();
            bytes
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn reader_counts_saturate_at_the_u32_boundary() {
        // Regression (satellite): a location read more than u32::MAX times
        // used to wrap to 0 and corrupt the sharing distribution. Pin the
        // counter one below the ceiling and read twice: the first read
        // reaches u32::MAX, the second must stay there.
        let config = AnalysisConfig::dataflow_limit().with_value_stats(true);
        let mut lw = LiveWell::new(config);
        lw.process(&TraceRecord::store(0, 40, Loc::int(1), None));
        lw.mem.get_or_insert_preexisting(40).readers = u32::MAX - 1;
        lw.process(&TraceRecord::load(1, 40, None, Loc::int(2)));
        assert_eq!(lw.mem.get(40).map(|r| r.readers), Some(u32::MAX));
        lw.process(&TraceRecord::load(2, 40, None, Loc::int(3)));
        assert_eq!(
            lw.mem.get(40).map(|r| r.readers),
            Some(u32::MAX),
            "reader count must saturate, not wrap"
        );
        let report = lw.finish();
        let sharing = report.sharing_degrees().unwrap();
        assert_eq!(
            sharing.frequency(u64::from(u32::MAX)),
            1,
            "the saturated value must land in the top sharing bucket, not 0"
        );
    }

    /// The paged (default) and flat (legacy) layouts must be externally
    /// indistinguishable: identical reports and identical PGCP bytes.
    fn assert_layouts_equivalent(records: &[TraceRecord], config: AnalysisConfig) {
        let mut paged = LiveWell::new(config.clone());
        let mut flat = FlatLiveWell::new(config.clone());
        paged.process_all(records);
        flat.process_all(records);
        assert_eq!(paged.live_well_size(), flat.live_well_size());
        assert_eq!(paged.evictions(), flat.evictions());

        let mut paged_bytes = Vec::new();
        paged.save_checkpoint(&mut paged_bytes).unwrap();
        let mut flat_bytes = Vec::new();
        flat.save_checkpoint(&mut flat_bytes).unwrap();
        assert_eq!(
            paged_bytes, flat_bytes,
            "PGCP bytes must be layout-independent"
        );
        assert_eq!(paged.finish().to_json(), flat.finish().to_json());
    }

    #[test]
    fn paged_and_flat_layouts_produce_identical_reports_and_checkpoints() {
        let trace = synthetic::random_trace(1500, 29);
        assert_layouts_equivalent(&trace, AnalysisConfig::dataflow_limit());
        assert_layouts_equivalent(
            &trace,
            AnalysisConfig::dataflow_limit()
                .with_renames(RenameSet::none())
                .with_value_stats(true)
                .with_window(WindowSize::bounded(64)),
        );
        // Bounded mode exercises eviction on both layouts.
        assert_layouts_equivalent(
            &trace,
            AnalysisConfig::dataflow_limit().with_live_well_cap(48),
        );
    }

    #[test]
    fn checkpoints_resume_across_layouts() {
        // A checkpoint written by one layout must resume under the other
        // (the PR's compatibility story for in-flight analyses): old flat
        // checkpoints resume into the paged analyzer and vice versa, and
        // both converge to the uninterrupted serialized state.
        let trace = synthetic::random_trace(1000, 31);
        let config = AnalysisConfig::dataflow_limit().with_value_stats(true);
        let split = 600;

        let mut flat = FlatLiveWell::new(config.clone());
        flat.process_all(&trace[..split]);
        let mut flat_ckpt = Vec::new();
        flat.save_checkpoint(&mut flat_ckpt).unwrap();

        let mut paged = LiveWell::resume_from(&flat_ckpt[..], config.clone()).unwrap();
        assert_eq!(paged.records_processed(), split as u64);
        paged.process_all(&trace[split..]);

        let mut uninterrupted = LiveWell::new(config.clone());
        uninterrupted.process_all(&trace);
        let mut resumed_bytes = Vec::new();
        paged.save_checkpoint(&mut resumed_bytes).unwrap();
        let mut direct_bytes = Vec::new();
        uninterrupted.save_checkpoint(&mut direct_bytes).unwrap();
        assert_eq!(resumed_bytes, direct_bytes);

        // And the mirror direction: paged checkpoint, flat resume.
        let mut paged_half = LiveWell::new(config.clone());
        paged_half.process_all(&trace[..split]);
        let mut paged_ckpt = Vec::new();
        paged_half.save_checkpoint(&mut paged_ckpt).unwrap();
        assert_eq!(paged_ckpt, flat_ckpt, "mid-run checkpoints must match too");
        let mut flat_resumed = FlatLiveWell::resume_from(&paged_ckpt[..], config).unwrap();
        flat_resumed.process_all(&trace[split..]);
        let mut flat_final = Vec::new();
        flat_resumed.save_checkpoint(&mut flat_final).unwrap();
        assert_eq!(flat_final, direct_bytes);
    }

    #[test]
    fn process_returns_placement_level() {
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        let l0 = lw.process(&TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)));
        assert_eq!(l0, Some(0));
        let l1 = lw.process(&TraceRecord::compute(
            1,
            OpClass::IntMul,
            &[Loc::int(1)],
            Loc::int(2),
        ));
        assert_eq!(l1, Some(6));
        assert_eq!(lw.process(&TraceRecord::branch(2, &[Loc::int(2)])), None);
    }
}

//! The live well: the paper's streaming DDG placement algorithm.

use crate::branch::{BranchPolicy, Predictor};
use crate::config::{AnalysisConfig, SyscallPolicy};
use crate::dist::Distribution;
use crate::fasthash::FastMap;
use crate::memmodel::MemOrdering;
use crate::profile::ParallelismProfile;
use crate::report::AnalysisReport;
use crate::window::WindowLimiter;
use paragraph_isa::OpClass;
use paragraph_trace::{Loc, TraceRecord};

/// A live-well entry: where a value became available, and the deepest level
/// at which it has been used.
#[derive(Debug, Clone, Copy)]
struct ValueRecord {
    /// Number of operations that have read this value (degree of sharing).
    readers: u32,
    /// Completion level of the operation that created the value. Values that
    /// existed when the program began (pre-initialized registers, DATA words)
    /// are recorded at level -1, "the level immediately preceding the
    /// topologically highest level in the DDG", so they delay nothing.
    avail: i64,
    /// Deepest completion level of any operation that has read this value
    /// (at least `avail`). This is the paper's `Ddest`: the level a
    /// non-renamed overwrite of the location must be placed below.
    deepest_use: i64,
}

impl ValueRecord {
    fn preexisting() -> ValueRecord {
        ValueRecord {
            readers: 0,
            avail: -1,
            deepest_use: -1,
        }
    }
}

/// The streaming DDG analyzer (the paper's *Paragraph* algorithm, §3.2).
///
/// Processes a serial execution trace one record at a time, maintaining the
/// *live well* — a table recording, for every live value, the DDG level in
/// which it was created. Each value-creating instruction is placed at
///
/// ```text
/// Ldest = MAX(Lsrc1, Lsrc2, highestLevel [, Ddest]) + top
/// ```
///
/// where `Lsrc*` are the levels at which the source values become available,
/// `highestLevel` is the current placement floor (raised by firewalls and by
/// instruction-window displacement), `Ddest` is the deepest use of the
/// previous value in the destination location (only when that location's
/// storage class is not renamed), and `top` is the operation latency.
///
/// *Deviation note:* the paper's prose gives the storage-dependency term as
/// `Ddest + 1`, but its own worked example (Figure 2, critical path 6) is
/// only consistent with `Ddest` when levels are completion levels, so that
/// is what this implementation (and the explicit-graph builder, which is
/// cross-validated against it) uses. See `DESIGN.md` §1.
///
/// # Examples
///
/// ```
/// use paragraph_core::{AnalysisConfig, LiveWell};
/// use paragraph_trace::synthetic;
///
/// let mut analyzer = LiveWell::new(AnalysisConfig::dataflow_limit());
/// for record in synthetic::figure1() {
///     analyzer.process(&record);
/// }
/// let report = analyzer.finish();
/// assert_eq!(report.critical_path_length(), 4);
/// ```
#[derive(Debug)]
pub struct LiveWell {
    config: AnalysisConfig,
    int_regs: [Option<ValueRecord>; 32],
    fp_regs: [Option<ValueRecord>; 32],
    mem: FastMap<u64, ValueRecord>,
    /// `highestLevel - 1` in the paper's terms: every newly placed operation
    /// completes at `floor + top` at the earliest.
    floor: i64,
    /// The paper's `deepestLevelYetUsed`: the deepest completion level of any
    /// placed operation; -1 before anything is placed.
    deepest: i64,
    window: WindowLimiter,
    profile: ParallelismProfile,
    predictor: Option<Predictor>,
    /// Operations started per level, when an issue limit is configured.
    level_starts: Option<FastMap<i64, u32>>,
    value_stats: Option<ValueStats>,
    /// Conservative memory ordering, under `MemoryModel::NoDisambiguation`.
    mem_ordering: MemOrdering,
    total_records: u64,
    placed: u64,
    syscalls: u64,
    firewalls: u64,
    branch_firewalls: u64,
    peak_live_values: usize,
    class_placed: [u64; OpClass::ALL.len()],
}

#[derive(Debug, Default)]
struct ValueStats {
    lifetimes: Distribution,
    sharing: Distribution,
}

impl ValueStats {
    fn retire(&mut self, record: &ValueRecord) {
        // Preexisting values (created before the program began) are not
        // counted; the paper's distributions cover created values.
        if record.avail >= 0 {
            self.lifetimes
                .record((record.deepest_use - record.avail) as u64);
            self.sharing.record(u64::from(record.readers));
        }
    }
}

impl LiveWell {
    /// Creates an analyzer for one pass under `config`.
    pub fn new(config: AnalysisConfig) -> LiveWell {
        let predictor = match config.branch_policy() {
            BranchPolicy::Predict(kind) => Some(Predictor::new(kind)),
            _ => None,
        };
        LiveWell {
            window: WindowLimiter::new(config.window()),
            profile: ParallelismProfile::new(config.profile_bins()),
            predictor,
            level_starts: config.issue_limit().map(|_| FastMap::default()),
            value_stats: config.value_stats().then(ValueStats::default),
            mem_ordering: MemOrdering::default(),
            config,
            int_regs: [None; 32],
            fp_regs: [None; 32],
            mem: FastMap::default(),
            floor: -1,
            deepest: -1,
            total_records: 0,
            placed: 0,
            syscalls: 0,
            firewalls: 0,
            branch_firewalls: 0,
            peak_live_values: 0,
            class_placed: [0; OpClass::ALL.len()],
        }
    }

    fn entry(&mut self, loc: Loc) -> &mut ValueRecord {
        let slot = match loc {
            Loc::IntReg(r) => &mut self.int_regs[r.index() as usize],
            Loc::FpReg(r) => &mut self.fp_regs[r.index() as usize],
            Loc::Mem(addr) => {
                return self
                    .mem
                    .entry(addr)
                    .or_insert_with(ValueRecord::preexisting)
            }
        };
        slot.get_or_insert_with(ValueRecord::preexisting)
    }

    fn peek(&self, loc: Loc) -> Option<ValueRecord> {
        match loc {
            Loc::IntReg(r) => self.int_regs[r.index() as usize],
            Loc::FpReg(r) => self.fp_regs[r.index() as usize],
            Loc::Mem(addr) => self.mem.get(&addr).copied(),
        }
    }

    fn put(&mut self, loc: Loc, record: ValueRecord) {
        let old = match loc {
            Loc::IntReg(r) => self.int_regs[r.index() as usize].replace(record),
            Loc::FpReg(r) => self.fp_regs[r.index() as usize].replace(record),
            Loc::Mem(addr) => self.mem.insert(addr, record),
        };
        if let (Some(stats), Some(old)) = (self.value_stats.as_mut(), old) {
            stats.retire(&old);
        }
    }

    /// Processes one trace record; returns the completion level the record
    /// was placed at, or `None` if it was not placed in the DDG (control
    /// instructions; system calls under the optimistic policy).
    pub fn process(&mut self, record: &TraceRecord) -> Option<u64> {
        self.total_records += 1;
        let class = record.class();

        // The instruction enters the window, displacing the oldest visible
        // instruction; the displaced level becomes a firewall below which
        // this (and every later) instruction must be placed.
        if let Some((displaced, ())) = self.window.make_room() {
            self.floor = self.floor.max(displaced);
        }

        let skip = !class.creates_value()
            || (class == OpClass::Syscall
                && self.config.syscall_policy() == SyscallPolicy::Optimistic);
        if skip {
            if class == OpClass::Syscall {
                self.syscalls += 1;
            }
            if class == OpClass::Branch {
                self.observe_branch(record);
            }
            self.window.push(None);
            return None;
        }

        // Ldest = MAX(Lsrc..., highestLevel [, Ddest]) + top
        let mut base = self.floor;
        for &src in record.srcs() {
            base = base.max(self.entry(src).avail);
        }
        if let Some(dest) = record.dest() {
            if !self.config.renames().renames(dest, self.config.segments()) {
                if let Some(old) = self.peek(dest) {
                    base = base.max(old.deepest_use);
                }
            }
        }
        if self.config.memory_model().is_conservative() {
            // Without disambiguation a load may alias any earlier store,
            // and a store any earlier load or store.
            let bound = match class {
                OpClass::Load => self.mem_ordering.load_floor(),
                OpClass::Store => self.mem_ordering.store_floor(),
                _ => None,
            };
            if let Some((level, _)) = bound {
                base = base.max(level);
            }
        }
        let top = i64::from(self.config.latency().latency(class));
        let ldest = if let Some(limit) = self.config.issue_limit() {
            // Resource dependency: at most `limit` operations may start in
            // any level; slide the start level down to the first free slot.
            let starts = self.level_starts.as_mut().expect("issue table");
            let mut start = base + 1;
            while starts.get(&start).is_some_and(|&n| n as usize >= limit) {
                start += 1;
            }
            *starts.entry(start).or_insert(0) += 1;
            start + top - 1
        } else {
            base + top
        };

        self.profile.record(ldest as u64);
        self.deepest = self.deepest.max(ldest);
        self.placed += 1;
        self.class_placed[class as usize] += 1;
        if self.config.memory_model().is_conservative() {
            match class {
                OpClass::Load => self.mem_ordering.observe_load(ldest, usize::MAX),
                OpClass::Store => self.mem_ordering.observe_store(ldest, usize::MAX),
                _ => {}
            }
        }

        for &src in record.srcs() {
            let entry = self.entry(src);
            entry.deepest_use = entry.deepest_use.max(ldest);
            entry.readers += 1;
        }
        if let Some(dest) = record.dest() {
            self.put(
                dest,
                ValueRecord {
                    readers: 0,
                    avail: ldest,
                    deepest_use: ldest,
                },
            );
        }

        if class == OpClass::Syscall {
            self.syscalls += 1;
            if self.config.syscall_policy() == SyscallPolicy::Conservative {
                // Place a firewall immediately after the deepest computation:
                // no later instruction may be placed higher.
                self.floor = self.deepest;
                self.firewalls += 1;
            }
        }

        self.window.push(Some((ldest, ())));

        // The paper's working-set concern: "a very large memory (32 MBytes)
        // was required to hold the working set of Paragraph". Track the peak
        // so reports can size the live well. Memory entries dominate; the
        // register files are a constant 64.
        self.peak_live_values = self.peak_live_values.max(self.mem.len() + 64);

        Some(ldest as u64)
    }

    /// Processes every record of an iterator.
    pub fn process_all<'a, I>(&mut self, records: I)
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        for record in records {
            self.process(record);
        }
    }

    /// Number of values currently held in the live well (the paper's working
    /// set concern: "billions of values will be entered into the live well").
    pub fn live_well_size(&self) -> usize {
        let regs = self.int_regs.iter().filter(|r| r.is_some()).count()
            + self.fp_regs.iter().filter(|r| r.is_some()).count();
        regs + self.mem.len()
    }

    /// The deepest completion level placed so far, if anything was placed.
    pub fn deepest_level(&self) -> Option<u64> {
        (self.deepest >= 0).then_some(self.deepest as u64)
    }

    /// Handles a conditional branch under the configured branch policy: a
    /// mispredicted (or unpredicted, under [`BranchPolicy::StallAlways`])
    /// branch firewalls the graph at the branch's resolution level.
    fn observe_branch(&mut self, record: &TraceRecord) {
        let mispredicted = match self.config.branch_policy() {
            BranchPolicy::Perfect => false,
            BranchPolicy::StallAlways => true,
            BranchPolicy::Predict(_) => match record.branch_info() {
                Some(info) => {
                    let predictor = self.predictor.as_mut().expect("predictor");
                    !predictor.predict_and_train(record.pc(), info.taken, info.target)
                }
                // No recorded outcome: treated as correctly predicted.
                None => false,
            },
        };
        if mispredicted {
            // The branch resolves one level after its operands are ready;
            // nothing fetched past it may execute earlier.
            let mut resolve = self.floor;
            for &src in record.srcs() {
                resolve = resolve.max(self.entry(src).avail);
            }
            let resolve = resolve + 1;
            for &src in record.srcs() {
                // The branch read the value (WAR now extends to the resolve
                // level) but is not a sharing consumer: sharing counts
                // value-creating operations fired by a token (§2.3).
                let entry = self.entry(src);
                entry.deepest_use = entry.deepest_use.max(resolve);
            }
            if resolve > self.floor {
                self.floor = resolve;
                self.branch_firewalls += 1;
            }
        }
    }

    /// Number of branch-misprediction firewalls inserted so far.
    pub fn branch_firewalls(&self) -> u64 {
        self.branch_firewalls
    }

    /// Peak number of entries the live well has held (the paper's
    /// working-set concern; §3.2 discusses value-death tracking to bound
    /// this, we simply report it).
    pub fn peak_live_values(&self) -> usize {
        self.peak_live_values
    }

    /// The running branch predictor, if the policy uses one.
    pub fn predictor(&self) -> Option<&Predictor> {
        self.predictor.as_ref()
    }

    /// A cheap running snapshot: `(instructions seen, operations placed,
    /// critical path length, available parallelism)`. Lets callers trace
    /// how parallelism accumulates with trace length without finishing the
    /// pass.
    pub fn snapshot(&self) -> (u64, u64, u64, f64) {
        let cp = (self.deepest + 1).max(0) as u64;
        let par = if cp == 0 {
            0.0
        } else {
            self.placed as f64 / cp as f64
        };
        (self.total_records, self.placed, cp, par)
    }

    /// Finishes the pass and produces the report.
    pub fn finish(mut self) -> AnalysisReport {
        // Retire every value still live so the distributions are complete.
        if let Some(mut stats) = self.value_stats.take() {
            for slot in self.int_regs.iter().chain(self.fp_regs.iter()) {
                if let Some(record) = slot {
                    stats.retire(record);
                }
            }
            for record in self.mem.values() {
                stats.retire(record);
            }
            self.value_stats = Some(stats);
        }
        let value_stats = self.value_stats.map(|s| (s.lifetimes, s.sharing));
        AnalysisReport::new(
            self.config,
            self.profile,
            self.total_records,
            self.placed,
            self.syscalls,
            self.firewalls,
            self.branch_firewalls,
            self.peak_live_values,
            self.predictor,
            value_stats,
            self.class_placed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RenameSet, WindowSize};
    use paragraph_isa::LatencyModel;
    use paragraph_trace::synthetic;

    fn run(records: &[TraceRecord], config: AnalysisConfig) -> AnalysisReport {
        let mut lw = LiveWell::new(config);
        lw.process_all(records);
        lw.finish()
    }

    #[test]
    fn figure1_dataflow_profile() {
        // Figure 1 / §2.3: profile [4, 2, 1, 1], critical path 4.
        let report = run(&synthetic::figure1(), AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 4);
        assert_eq!(
            report.profile().exact_counts(),
            Some(vec![4, 2, 1, 1]),
            "parallelism profile must match the paper's worked example"
        );
    }

    #[test]
    fn figure2_storage_dependency_profile() {
        // Figure 2 / §2.3: profile [2, 1, 2, 1, 1, 1], critical path 6.
        let config = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&synthetic::figure2(), config);
        assert_eq!(report.critical_path_length(), 6);
        assert_eq!(
            report.profile().exact_counts(),
            Some(vec![2, 1, 2, 1, 1, 1])
        );
    }

    #[test]
    fn figure2_with_register_renaming_recovers_figure1() {
        let config = AnalysisConfig::dataflow_limit().with_renames(RenameSet::registers_only());
        let report = run(&synthetic::figure2(), config);
        assert_eq!(report.critical_path_length(), 4);
        assert_eq!(report.profile().exact_counts(), Some(vec![4, 2, 1, 1]));
    }

    #[test]
    fn chain_is_fully_serial() {
        let report = run(&synthetic::chain(100), AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 100);
        assert_eq!(report.available_parallelism(), 1.0);
    }

    #[test]
    fn independent_ops_all_land_in_level_zero() {
        let report = run(
            &synthetic::independent(50),
            AnalysisConfig::dataflow_limit(),
        );
        assert_eq!(report.critical_path_length(), 1);
        assert_eq!(report.available_parallelism(), 50.0);
    }

    #[test]
    fn interleaved_chains_have_chain_count_parallelism() {
        let report = run(
            &synthetic::interleaved_chains(8, 25),
            AnalysisConfig::dataflow_limit(),
        );
        assert_eq!(report.critical_path_length(), 25);
        assert_eq!(report.available_parallelism(), 8.0);
    }

    #[test]
    fn window_of_one_serializes_independent_ops() {
        let config = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(1));
        let report = run(&synthetic::independent(20), config);
        assert_eq!(report.critical_path_length(), 20);
        assert_eq!(report.available_parallelism(), 1.0);
    }

    #[test]
    fn window_bounds_level_width() {
        for w in [2usize, 3, 7] {
            let config = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(w));
            let report = run(&synthetic::independent(50), config);
            let counts = report.profile().exact_counts().unwrap();
            assert!(
                counts.iter().all(|&c| c <= w as u64),
                "window {w} must bound level width, got {counts:?}"
            );
            assert_eq!(counts.iter().sum::<u64>(), 50);
        }
    }

    #[test]
    fn window_monotonically_exposes_parallelism() {
        let trace = synthetic::random_trace(2000, 11);
        let mut last = 0.0;
        for w in [1usize, 4, 16, 64, 256, 1024, 4096] {
            let config = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(w));
            let par = run(&trace, config).available_parallelism();
            assert!(
                par >= last - 1e-9,
                "parallelism should not decrease with window size ({w}: {par} < {last})"
            );
            last = par;
        }
        let unlimited = run(&trace, AnalysisConfig::dataflow_limit()).available_parallelism();
        assert!(unlimited >= last - 1e-9);
    }

    #[test]
    fn conservative_syscall_inserts_firewall() {
        // Two independent ops with a syscall between them: under the
        // conservative policy the second op must land below the syscall.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::syscall(1, &[], None),
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(2)),
        ];
        let report = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(report.firewalls(), 1);
        assert_eq!(report.critical_path_length(), 2);
        assert_eq!(report.profile().exact_counts(), Some(vec![2, 1]));

        let optimistic =
            AnalysisConfig::dataflow_limit().with_syscall_policy(SyscallPolicy::Optimistic);
        let report = run(&records, optimistic);
        assert_eq!(report.firewalls(), 0);
        assert_eq!(report.critical_path_length(), 1);
        assert_eq!(report.placed_ops(), 2); // the syscall is ignored
        assert_eq!(report.syscalls(), 1); // ...but still counted
    }

    #[test]
    fn optimistic_never_exceeds_conservative_critical_path() {
        let trace = synthetic::random_trace(3000, 5);
        let cons = run(&trace, AnalysisConfig::dataflow_limit());
        let opt = run(
            &trace,
            AnalysisConfig::dataflow_limit().with_syscall_policy(SyscallPolicy::Optimistic),
        );
        assert!(opt.critical_path_length() <= cons.critical_path_length());
    }

    #[test]
    fn latencies_stretch_the_critical_path() {
        // A chain of 3 multiplies: 3 * 6 = 18 levels under Table 1.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntMul, &[], Loc::int(1)),
            TraceRecord::compute(1, OpClass::IntMul, &[Loc::int(1)], Loc::int(1)),
            TraceRecord::compute(2, OpClass::IntMul, &[Loc::int(1)], Loc::int(1)),
        ];
        let report = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 18);

        let unit = AnalysisConfig::dataflow_limit().with_latency(LatencyModel::unit());
        let report = run(&records, unit);
        assert_eq!(report.critical_path_length(), 3);
    }

    #[test]
    fn memory_war_dependency_without_renaming() {
        // load from addr 0, then store a new (independent) value to addr 0.
        // Without memory renaming the store must follow the load's use.
        let records = vec![
            TraceRecord::load(0, 0, None, Loc::int(1)),
            TraceRecord::compute(1, OpClass::IntAlu, &[Loc::int(1)], Loc::int(2)),
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(3)),
            TraceRecord::store(3, 0, Loc::int(3), None),
        ];
        let no_rename = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&records, no_rename);
        // load@0, alu@1, li@0, store must wait for alu's use of the old
        // value? No: Ddest of mem[0] is max(load level)=0 ... the load reads
        // mem[0]; the *use* of mem[0]'s value is the load itself (level 0).
        // store: max(floor, src li@0, Ddest=0) + 1 = 1... but WAW with the
        // original value's creation (-1) is subsumed. Critical path is the
        // alu chain: 2.
        assert_eq!(report.critical_path_length(), 2);

        // Now make a later reader deepen the old value's use:
        let records = vec![
            TraceRecord::load(0, 0, None, Loc::int(1)), // reads mem[0] @0
            TraceRecord::compute(1, OpClass::IntAlu, &[Loc::int(1)], Loc::int(2)), // @1
            TraceRecord::load(2, 0, None, Loc::int(4)), // reads mem[0] @0
            TraceRecord::compute(3, OpClass::IntAlu, &[Loc::int(2)], Loc::int(5)), // @2
            TraceRecord::compute(4, OpClass::IntAlu, &[Loc::int(5), Loc::int(4)], Loc::int(6)), // @3 reads mem[0]-value via r4? no: reads r5,r4
            TraceRecord::store(5, 0, Loc::int(6), None), // overwrites mem[0]
        ];
        let no_rename = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&records, no_rename.clone());
        // The store depends on r6 (@4): placed at 5. The WAR on mem[0]
        // (deepest use @0 by the loads) is subsumed. Renaming changes nothing
        // here:
        let renamed = run(
            &records,
            AnalysisConfig::dataflow_limit().with_renames(RenameSet::all()),
        );
        assert_eq!(
            report.critical_path_length(),
            renamed.critical_path_length()
        );
    }

    #[test]
    fn war_on_register_delays_overwrite() {
        // r1 is created at level 0, read by a long-latency op completing at
        // level 12; overwriting r1 without renaming must land after 12.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)), // @0
            TraceRecord::compute(1, OpClass::IntDiv, &[Loc::int(1)], Loc::int(2)), // @12
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(1)), // WAR
        ];
        let no_rename = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&records, no_rename);
        // Ldest(overwrite) = max(-1 floor, Ddest=12) + 1 = 13 -> CP 14.
        assert_eq!(report.critical_path_length(), 14);

        let renamed = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(renamed.critical_path_length(), 13); // just the div chain
    }

    #[test]
    fn waw_without_intervening_read_still_orders() {
        // Two writes to r1, no reads. Without renaming the second write must
        // be placed after the first value's creation (deepest_use == avail).
        let records = vec![
            TraceRecord::compute(0, OpClass::IntDiv, &[], Loc::int(1)), // completes @11
            TraceRecord::compute(1, OpClass::IntAlu, &[], Loc::int(1)), // WAW
        ];
        let no_rename = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let report = run(&records, no_rename);
        assert_eq!(report.critical_path_length(), 13); // placed @12, after the div
        let renamed = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(renamed.critical_path_length(), 12); // just the div
    }

    #[test]
    fn stack_vs_data_renaming_is_segment_sensitive() {
        use paragraph_trace::SegmentMap;
        // A memory word is read *deep* in the graph (its load waits for a
        // divide chain), then overwritten by an independent store. With
        // registers+stack renamed, only the data-segment version orders.
        let mk = |addr: u64| {
            vec![
                TraceRecord::compute(0, OpClass::IntDiv, &[], Loc::int(1)), // @11
                TraceRecord::load(1, addr, Some(Loc::int(1)), Loc::int(2)), // @12, deep read
                TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(3)), // @0
                TraceRecord::store(3, addr, Loc::int(3), None),             // WAR on mem[addr]
            ]
        };
        let segments = SegmentMap::new(100, 1000);
        let config = AnalysisConfig::dataflow_limit()
            .with_renames(RenameSet::registers_and_stack())
            .with_segments(segments);
        let stack_report = run(&mk(2000), config.clone());
        let data_report = run(&mk(50), config);
        assert!(
            data_report.critical_path_length() > stack_report.critical_path_length(),
            "data-segment WAR must order when only stack is renamed"
        );
    }

    #[test]
    fn preexisting_values_do_not_delay_computation() {
        // A load of a never-written DATA word is placed in the first level.
        let records = vec![TraceRecord::load(0, 77, None, Loc::int(1))];
        let report = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 1);
        assert_eq!(report.profile().exact_counts(), Some(vec![1]));
    }

    #[test]
    fn branches_are_observed_but_not_placed() {
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::branch(1, &[Loc::int(1)]),
            TraceRecord::jump(2, &[]),
        ];
        let report = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(report.total_records(), 3);
        assert_eq!(report.placed_ops(), 1);
    }

    #[test]
    fn live_well_size_tracks_locations() {
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        assert_eq!(lw.live_well_size(), 0);
        lw.process(&TraceRecord::compute(
            0,
            OpClass::IntAlu,
            &[Loc::int(3)],
            Loc::int(1),
        ));
        // r3 (preexisting) and r1 (created).
        assert_eq!(lw.live_well_size(), 2);
        lw.process(&TraceRecord::store(1, 9, Loc::int(1), None));
        assert_eq!(lw.live_well_size(), 3);
        assert_eq!(lw.deepest_level(), Some(1));
    }

    #[test]
    fn stall_always_branches_serialize_around_resolution() {
        use crate::branch::BranchPolicy;
        // Independent ops around a branch: with perfect control flow they
        // share level 0; stalling on every branch pushes the later one down.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::branch_outcome(1, &[Loc::int(1)], true, 0),
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(2)),
        ];
        let perfect = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(perfect.critical_path_length(), 1);
        assert_eq!(perfect.branch_firewalls(), 0);

        let stall = AnalysisConfig::dataflow_limit().with_branch_policy(BranchPolicy::StallAlways);
        let report = run(&records, stall);
        // Branch resolves at level 1 (its source completes at 0); the next
        // op lands at 2.
        assert_eq!(report.critical_path_length(), 3);
        assert_eq!(report.branch_firewalls(), 1);
    }

    #[test]
    fn predicted_branches_do_not_firewall() {
        use crate::branch::{BranchPolicy, PredictorKind};
        // A loop-like stream of always-taken branches: always-taken predicts
        // them all; never-taken misses them all.
        let mut records = Vec::new();
        for i in 0..20u64 {
            records.push(TraceRecord::compute(
                2 * i,
                OpClass::IntAlu,
                &[],
                Loc::int(1),
            ));
            records.push(TraceRecord::branch_outcome(
                2 * i + 1,
                &[Loc::int(1)],
                true,
                0,
            ));
        }
        let good = run(
            &records,
            AnalysisConfig::dataflow_limit()
                .with_branch_policy(BranchPolicy::Predict(PredictorKind::AlwaysTaken)),
        );
        assert_eq!(good.branch_firewalls(), 0);
        assert_eq!(good.predictor().unwrap().mispredictions(), 0);
        let bad = run(
            &records,
            AnalysisConfig::dataflow_limit()
                .with_branch_policy(BranchPolicy::Predict(PredictorKind::NeverTaken)),
        );
        assert_eq!(bad.predictor().unwrap().mispredictions(), 20);
        assert!(bad.critical_path_length() > good.critical_path_length());
    }

    #[test]
    fn branches_without_outcomes_are_treated_as_predicted() {
        use crate::branch::{BranchPolicy, PredictorKind};
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::branch(1, &[Loc::int(1)]), // no outcome recorded
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(2)),
        ];
        let report = run(
            &records,
            AnalysisConfig::dataflow_limit()
                .with_branch_policy(BranchPolicy::Predict(PredictorKind::NeverTaken)),
        );
        assert_eq!(report.branch_firewalls(), 0);
        assert_eq!(report.critical_path_length(), 1);
    }

    #[test]
    fn issue_limit_bounds_starts_per_level() {
        // 30 independent unit-latency ops on a 4-wide machine: ceil(30/4)
        // levels, at most 4 completions per level.
        let config = AnalysisConfig::dataflow_limit()
            .with_latency(LatencyModel::unit())
            .with_issue_limit(4);
        let report = run(&synthetic::independent(30), config);
        assert_eq!(report.critical_path_length(), 8); // ceil(30/4)
        let counts = report.profile().exact_counts().unwrap();
        assert!(counts.iter().all(|&c| c <= 4));
        assert_eq!(counts.iter().sum::<u64>(), 30);
    }

    #[test]
    fn issue_limit_one_fully_serializes() {
        let config = AnalysisConfig::dataflow_limit()
            .with_latency(LatencyModel::unit())
            .with_issue_limit(1);
        let report = run(&synthetic::independent(12), config);
        assert_eq!(report.critical_path_length(), 12);
        assert_eq!(report.available_parallelism(), 1.0);
    }

    #[test]
    fn issue_limit_is_monotone() {
        let trace = synthetic::random_trace(1500, 17);
        let mut last = u64::MAX;
        for limit in [1usize, 2, 4, 8, 16, 64] {
            let config = AnalysisConfig::dataflow_limit().with_issue_limit(limit);
            let cp = run(&trace, config).critical_path_length();
            assert!(cp <= last, "limit {limit}: {cp} > {last}");
            last = cp;
        }
        let unlimited = run(&trace, AnalysisConfig::dataflow_limit()).critical_path_length();
        assert!(unlimited <= last);
    }

    #[test]
    fn value_stats_capture_lifetimes_and_sharing() {
        // One producer read by three consumers, all unit latency.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)), // @0
            TraceRecord::compute(1, OpClass::IntAlu, &[Loc::int(1)], Loc::int(2)), // @1
            TraceRecord::compute(2, OpClass::IntAlu, &[Loc::int(1)], Loc::int(3)), // @1
            TraceRecord::compute(3, OpClass::IntAlu, &[Loc::int(1)], Loc::int(4)), // @1
        ];
        let config = AnalysisConfig::dataflow_limit()
            .with_latency(LatencyModel::unit())
            .with_value_stats(true);
        let report = run(&records, config);
        let sharing = report.sharing_degrees().unwrap();
        assert_eq!(sharing.count(), 4);
        assert_eq!(sharing.frequency(3), 1); // the producer
        assert_eq!(sharing.frequency(0), 3); // the leaves
        let lifetimes = report.value_lifetimes().unwrap();
        assert_eq!(lifetimes.frequency(1), 1); // producer lives 1 level
        assert_eq!(lifetimes.frequency(0), 3); // leaves die at creation
    }

    #[test]
    fn value_stats_match_explicit_graph() {
        use crate::ddg::Ddg;
        let trace = synthetic::random_trace(800, 23);
        let config = AnalysisConfig::dataflow_limit().with_value_stats(true);
        let report = run(&trace, config.clone());
        let ddg = Ddg::from_records(&trace, &config);
        assert_eq!(
            report.value_lifetimes().unwrap(),
            ddg.value_lifetimes(),
            "streaming and explicit lifetimes must agree"
        );
        assert_eq!(
            report.sharing_degrees().unwrap(),
            &ddg.sharing_degrees(),
            "streaming and explicit sharing must agree"
        );
    }

    #[test]
    fn value_stats_disabled_by_default() {
        let report = run(&synthetic::chain(5), AnalysisConfig::dataflow_limit());
        assert!(report.value_lifetimes().is_none());
        assert!(report.sharing_degrees().is_none());
    }

    #[test]
    fn no_disambiguation_serializes_memory_traffic() {
        use crate::memmodel::MemoryModel;
        // Two loads and two stores at distinct addresses: independent under
        // perfect disambiguation, chained without it.
        let records = vec![
            TraceRecord::store(0, 10, Loc::int(1), None),
            TraceRecord::load(1, 20, None, Loc::int(2)),
            TraceRecord::store(2, 30, Loc::int(3), None),
            TraceRecord::load(3, 40, None, Loc::int(4)),
        ];
        let perfect = run(&records, AnalysisConfig::dataflow_limit());
        assert_eq!(perfect.critical_path_length(), 1);
        let config =
            AnalysisConfig::dataflow_limit().with_memory_model(MemoryModel::NoDisambiguation);
        let report = run(&records, config);
        // store@0; load waits for it @1; store waits for both @2; load @3.
        assert_eq!(report.critical_path_length(), 4);
        assert_eq!(report.profile().exact_counts(), Some(vec![1, 1, 1, 1]));
    }

    #[test]
    fn no_disambiguation_leaves_alu_traffic_alone() {
        use crate::memmodel::MemoryModel;
        let config =
            AnalysisConfig::dataflow_limit().with_memory_model(MemoryModel::NoDisambiguation);
        let report = run(&synthetic::independent(20), config);
        assert_eq!(report.critical_path_length(), 1);
    }

    #[test]
    fn loads_between_stores_may_overlap_without_disambiguation() {
        use crate::memmodel::MemoryModel;
        // Loads only conflict with stores, not each other.
        let records = vec![
            TraceRecord::load(0, 1, None, Loc::int(1)),
            TraceRecord::load(1, 2, None, Loc::int(2)),
            TraceRecord::load(2, 3, None, Loc::int(3)),
        ];
        let config =
            AnalysisConfig::dataflow_limit().with_memory_model(MemoryModel::NoDisambiguation);
        let report = run(&records, config);
        assert_eq!(report.critical_path_length(), 1);
        assert_eq!(report.available_parallelism(), 3.0);
    }

    #[test]
    fn snapshots_track_the_running_analysis() {
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        assert_eq!(lw.snapshot(), (0, 0, 0, 0.0));
        for record in synthetic::interleaved_chains(4, 10) {
            lw.process(&record);
        }
        let (seen, placed, cp, par) = lw.snapshot();
        assert_eq!(seen, 40);
        assert_eq!(placed, 40);
        assert_eq!(cp, 10);
        assert_eq!(par, 4.0);
        let report = lw.finish();
        assert_eq!(report.critical_path_length(), cp);
    }

    #[test]
    fn process_returns_placement_level() {
        let mut lw = LiveWell::new(AnalysisConfig::dataflow_limit());
        let l0 = lw.process(&TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)));
        assert_eq!(l0, Some(0));
        let l1 = lw.process(&TraceRecord::compute(
            1,
            OpClass::IntMul,
            &[Loc::int(1)],
            Loc::int(2),
        ));
        assert_eq!(l1, Some(6));
        assert_eq!(lw.process(&TraceRecord::branch(2, &[Loc::int(2)])), None);
    }
}

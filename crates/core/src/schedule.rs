//! Resource-constrained execution of a DDG (Figure 4 of the paper).
//!
//! "By placing suitable constraints on the execution order, or the resources
//! available, we can throttle the DDG to match a particular machine model."
//! This module executes a materialized [`Ddg`] on an abstract machine with a
//! limited number of functional units, using greedy list scheduling with
//! critical-path priority, and reports the resulting schedule length and
//! issue profile.

use crate::ddg::{Ddg, NodeId};
use paragraph_isa::{LatencyModel, OpClass};
use std::collections::BinaryHeap;

/// Functional-unit model for [`schedule`].
///
/// # Examples
///
/// ```
/// use paragraph_core::schedule::ResourceModel;
///
/// let two_units = ResourceModel::units(2);
/// assert_eq!(two_units.unit_count(), 2);
/// assert!(two_units.is_pipelined());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceModel {
    units: usize,
    pipelined: bool,
    per_class: Option<ClassUnits>,
}

/// Per-family functional-unit counts for [`ResourceModel::heterogeneous`].
///
/// Classes group into the classic four unit families: integer ALUs,
/// floating-point units, memory ports, and a sequencer for system calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassUnits {
    /// Units executing integer ALU/multiply/divide operations.
    pub int: usize,
    /// Units executing floating-point operations.
    pub fp: usize,
    /// Memory ports (loads and stores).
    pub mem: usize,
}

impl ClassUnits {
    /// The pool size serving operations of `class`. Syscalls (and any
    /// other non-FP, non-memory class) share the integer units.
    pub fn family_count(&self, class: OpClass) -> usize {
        if class.is_fp() {
            self.fp
        } else if class.is_mem() {
            self.mem
        } else {
            self.int
        }
    }
}

impl ResourceModel {
    /// `n` generic functional units ("one is required for any instruction
    /// execution"), fully pipelined: a unit accepts a new operation every
    /// cycle even while earlier operations complete.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn units(n: usize) -> ResourceModel {
        assert!(n > 0, "at least one functional unit is required");
        ResourceModel {
            units: n,
            pipelined: true,
            per_class: None,
        }
    }

    /// Heterogeneous functional units: separate integer, floating-point and
    /// memory unit pools (fully pipelined). Total issue per cycle is the
    /// sum of the pools.
    ///
    /// # Panics
    ///
    /// Panics if any pool is empty.
    pub fn heterogeneous(int: usize, fp: usize, mem: usize) -> ResourceModel {
        assert!(
            int > 0 && fp > 0 && mem > 0,
            "every functional-unit pool needs at least one unit"
        );
        ResourceModel {
            units: int + fp + mem,
            pipelined: true,
            per_class: Some(ClassUnits { int, fp, mem }),
        }
    }

    /// Makes the units non-pipelined: an operation occupies its unit for its
    /// full latency.
    pub fn unpipelined(mut self) -> ResourceModel {
        self.pipelined = false;
        self
    }

    /// Number of functional units.
    pub fn unit_count(&self) -> usize {
        self.units
    }

    /// Whether units accept a new operation every cycle.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// The per-class unit pools, if heterogeneous.
    pub fn class_units(&self) -> Option<ClassUnits> {
        self.per_class
    }
}

/// The outcome of scheduling a DDG onto limited resources.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    cycles: u64,
    issued_per_cycle: Vec<u64>,
    ops: u64,
    units: usize,
}

impl ScheduleResult {
    /// Total cycles to execute the DDG under the resource constraints.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Operations issued in each cycle (the resource-constrained parallelism
    /// profile).
    pub fn issue_profile(&self) -> &[u64] {
        &self.issued_per_cycle
    }

    /// Total operations scheduled.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Mean operations per cycle (the throttled parallelism).
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }

    /// Fraction of issue slots used, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / (self.cycles * self.units as u64) as f64
        }
    }
}

#[derive(PartialEq, Eq)]
struct Ready {
    priority: u64,
    id: std::cmp::Reverse<NodeId>,
}

impl Ord for Ready {
    fn cmp(&self, other: &Ready) -> std::cmp::Ordering {
        (self.priority, self.id).cmp(&(other.priority, other.id))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Ready) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Schedules `ddg` onto the abstract machine described by `resources`,
/// respecting every edge in the graph and the latencies in `latency`.
///
/// Greedy list scheduling: at each cycle, ready operations (all
/// predecessors complete) are issued to free units in priority order, where
/// an operation's priority is the length of the longest latency-weighted
/// path from it to any sink (classic critical-path priority). Ties break
/// toward trace order.
///
/// # Examples
///
/// Reproduces Figure 4 of the paper — the Figure 1 computation on a machine
/// with two generic functional units takes 5 steps instead of 4:
///
/// ```
/// use paragraph_core::schedule::{schedule, ResourceModel};
/// use paragraph_core::{AnalysisConfig, Ddg, LatencyModel};
/// use paragraph_trace::synthetic;
///
/// let trace = synthetic::figure1();
/// let ddg = Ddg::from_records(&trace, &AnalysisConfig::dataflow_limit());
/// let result = schedule(&ddg, ResourceModel::units(2), &LatencyModel::unit());
/// assert_eq!(result.cycles(), 5);
/// assert!(result.issue_profile().iter().all(|&n| n <= 2));
/// ```
pub fn schedule(ddg: &Ddg, resources: ResourceModel, latency: &LatencyModel) -> ScheduleResult {
    let n = ddg.len();
    if n == 0 {
        return ScheduleResult {
            cycles: 0,
            issued_per_cycle: Vec::new(),
            ops: 0,
            units: resources.unit_count(),
        };
    }

    // Build adjacency and in-degrees.
    let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut preds_remaining: Vec<u32> = vec![0; n];
    for e in ddg.edges() {
        succs[e.from].push(e.to);
        preds_remaining[e.to] += 1;
    }

    // Critical-path priorities via reverse topological order (node ids are
    // already topological because edges always point from earlier to later
    // trace positions).
    let mut priority: Vec<u64> = vec![0; n];
    for id in (0..n).rev() {
        let top = u64::from(latency.latency(ddg.node(id).class)).max(1);
        let best_succ = succs[id].iter().map(|&s| priority[s]).max().unwrap_or(0);
        priority[id] = top + best_succ;
    }

    let mut ready: BinaryHeap<Ready> = BinaryHeap::new();
    for id in 0..n {
        if preds_remaining[id] == 0 {
            ready.push(Ready {
                priority: priority[id],
                id: std::cmp::Reverse(id),
            });
        }
    }

    // completion_events[c] = nodes completing at end of cycle c.
    let mut completions: Vec<(u64, NodeId)> = Vec::new(); // (finish_cycle, node)
    let mut issue_profile: Vec<u64> = Vec::new();
    let mut scheduled = 0usize;
    let mut cycle: u64 = 0;
    // Unit pool: number of units free this cycle (pipelined) or a vector of
    // busy-until times (non-pipelined).
    let mut busy_until: Vec<u64> = vec![0; resources.unit_count()];
    let mut last_cycle_with_work = 0u64;

    while scheduled < n {
        // Retire completions due at this cycle, unlocking successors.
        let mut i = 0;
        while i < completions.len() {
            if completions[i].0 == cycle {
                let (_, done) = completions.swap_remove(i);
                for &s in &succs[done] {
                    preds_remaining[s] -= 1;
                    if preds_remaining[s] == 0 {
                        ready.push(Ready {
                            priority: priority[s],
                            id: std::cmp::Reverse(s),
                        });
                    }
                }
            } else {
                i += 1;
            }
        }

        // Issue to free units. With heterogeneous pools each operation
        // draws from its own family's per-cycle budget.
        let mut issued_now = 0u64;
        let mut family_budget = resources.class_units().map(|c| (c.int, c.fp, c.mem));
        let mut deferred: Vec<Ready> = Vec::new();
        while let Some(candidate) = ready.pop() {
            let id = candidate.id.0;
            let class = ddg.node(id).class;
            if let Some((int, fp, mem)) = family_budget.as_mut() {
                let budget: &mut usize = if class.is_fp() {
                    fp
                } else if class.is_mem() {
                    mem
                } else {
                    int
                };
                if *budget == 0 {
                    deferred.push(candidate);
                    if *int == 0 && *fp == 0 && *mem == 0 {
                        break;
                    }
                    continue;
                }
                *budget -= 1;
            }
            let unit = busy_until
                .iter_mut()
                .filter(|b| **b <= cycle)
                .min_by_key(|b| **b);
            let Some(unit) = unit else {
                deferred.push(candidate);
                break;
            };
            let top = u64::from(latency.latency(class)).max(1);
            let finish = cycle + top;
            if resources.is_pipelined() {
                // The unit is only occupied for the issue cycle.
                *unit = cycle + 1;
            } else {
                *unit = finish;
            }
            completions.push((finish, id));
            scheduled += 1;
            issued_now += 1;
            last_cycle_with_work = last_cycle_with_work.max(finish);
            if issued_now == resources.unit_count() as u64 && resources.is_pipelined() {
                break;
            }
        }
        for d in deferred {
            ready.push(d);
        }
        issue_profile.push(issued_now);

        if scheduled == n {
            break;
        }
        cycle += 1;
        // Guard against stalls with nothing in flight (cannot happen for a
        // DAG, but protects against malformed input).
        assert!(
            !completions.is_empty() || !ready.is_empty() || !issue_profile.is_empty(),
            "scheduler wedged with work remaining"
        );
    }

    ScheduleResult {
        cycles: last_cycle_with_work,
        issued_per_cycle: issue_profile,
        ops: n as u64,
        units: resources.unit_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use paragraph_trace::synthetic;

    fn fig1_ddg() -> Ddg {
        Ddg::from_records(&synthetic::figure1(), &AnalysisConfig::dataflow_limit())
    }

    #[test]
    fn figure4_two_units_takes_five_steps() {
        let result = schedule(&fig1_ddg(), ResourceModel::units(2), &LatencyModel::unit());
        assert_eq!(result.cycles(), 5);
        assert_eq!(result.ops(), 8);
        assert!(result.issue_profile().iter().all(|&n| n <= 2));
    }

    #[test]
    fn unlimited_units_recover_dataflow_height() {
        let ddg = fig1_ddg();
        let result = schedule(&ddg, ResourceModel::units(64), &LatencyModel::unit());
        assert_eq!(result.cycles(), ddg.height());
    }

    #[test]
    fn one_unit_serializes() {
        let ddg = fig1_ddg();
        let result = schedule(&ddg, ResourceModel::units(1), &LatencyModel::unit());
        assert_eq!(result.cycles(), 8);
        assert!((result.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_units_never_slow_execution() {
        let trace = synthetic::random_trace(600, 21);
        let ddg = Ddg::from_records(&trace, &AnalysisConfig::dataflow_limit());
        let mut last = u64::MAX;
        for units in [1usize, 2, 4, 8, 16, 32] {
            let cycles =
                schedule(&ddg, ResourceModel::units(units), &LatencyModel::paper()).cycles();
            assert!(cycles <= last, "{units} units took {cycles} > {last}");
            last = cycles;
        }
    }

    #[test]
    fn schedule_never_beats_dataflow_height() {
        let trace = synthetic::random_trace(600, 22);
        let ddg = Ddg::from_records(&trace, &AnalysisConfig::dataflow_limit());
        for units in [1usize, 3, 17] {
            let cycles =
                schedule(&ddg, ResourceModel::units(units), &LatencyModel::paper()).cycles();
            assert!(cycles >= ddg.height());
        }
    }

    #[test]
    fn unpipelined_units_are_slower_for_long_latencies() {
        // Ten independent multiplies on 2 units: pipelined issues all in 5
        // cycles (finish 5+6-1); non-pipelined pairs occupy units 6 cycles
        // each.
        let records: Vec<_> = (0..10)
            .map(|i| {
                paragraph_trace::TraceRecord::compute(
                    i,
                    paragraph_isa::OpClass::IntMul,
                    &[],
                    paragraph_trace::Loc::int(1 + (i % 8) as u8),
                )
            })
            .collect();
        let config = AnalysisConfig::dataflow_limit();
        let ddg = Ddg::from_records(&records, &config);
        let pipelined = schedule(&ddg, ResourceModel::units(2), &LatencyModel::paper());
        let unpipelined = schedule(
            &ddg,
            ResourceModel::units(2).unpipelined(),
            &LatencyModel::paper(),
        );
        assert!(unpipelined.cycles() > pipelined.cycles());
    }

    #[test]
    fn empty_graph_schedules_to_zero() {
        let ddg = Ddg::from_records(&[], &AnalysisConfig::dataflow_limit());
        let result = schedule(&ddg, ResourceModel::units(2), &LatencyModel::paper());
        assert_eq!(result.cycles(), 0);
        assert_eq!(result.ops_per_cycle(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one functional unit")]
    fn zero_units_panics() {
        ResourceModel::units(0);
    }

    #[test]
    fn heterogeneous_units_bound_each_family() {
        // A trace mixing int and fp work: with 1 fp unit the fp stream
        // serializes even though int units are idle.
        let mut records = Vec::new();
        for i in 0..12u64 {
            records.push(paragraph_trace::TraceRecord::compute(
                2 * i,
                OpClass::FpAdd,
                &[],
                paragraph_trace::Loc::fp((i % 8) as u8),
            ));
            records.push(paragraph_trace::TraceRecord::compute(
                2 * i + 1,
                OpClass::IntAlu,
                &[],
                paragraph_trace::Loc::int(1 + (i % 8) as u8),
            ));
        }
        let ddg = Ddg::from_records(&records, &crate::AnalysisConfig::dataflow_limit());
        let narrow_fp = schedule(
            &ddg,
            ResourceModel::heterogeneous(8, 1, 8),
            &LatencyModel::unit(),
        );
        let wide_fp = schedule(
            &ddg,
            ResourceModel::heterogeneous(8, 8, 8),
            &LatencyModel::unit(),
        );
        assert!(narrow_fp.cycles() >= 12, "12 fp ops through 1 fp unit");
        assert!(wide_fp.cycles() < narrow_fp.cycles());
    }

    #[test]
    fn heterogeneous_total_width_is_pool_sum() {
        let model = ResourceModel::heterogeneous(2, 3, 4);
        assert_eq!(model.unit_count(), 9);
        let pools = model.class_units().unwrap();
        assert_eq!(pools.family_count(OpClass::FpMul), 3);
        assert_eq!(pools.family_count(OpClass::Load), 4);
        assert_eq!(pools.family_count(OpClass::IntAlu), 2);
        assert_eq!(pools.family_count(OpClass::Syscall), 2);
    }

    #[test]
    #[should_panic(expected = "every functional-unit pool")]
    fn empty_pool_panics() {
        ResourceModel::heterogeneous(1, 0, 1);
    }

    #[test]
    fn issue_profile_accounts_for_every_op() {
        let trace = synthetic::random_trace(300, 23);
        let ddg = Ddg::from_records(&trace, &AnalysisConfig::dataflow_limit());
        let result = schedule(&ddg, ResourceModel::units(4), &LatencyModel::paper());
        let issued: u64 = result.issue_profile().iter().sum();
        assert_eq!(issued, result.ops());
    }
}

//! Dynamic dependency graph (DDG) construction and analysis.
//!
//! This crate is the reproduction of the contribution of Austin & Sohi,
//! *Dynamic Dependency Analysis of Ordinary Programs* (ISCA 1992): a
//! methodology for building and analyzing the dynamic dependency graph of a
//! program from a serial execution trace.
//!
//! Two implementations of the paper's placement algorithm are provided and
//! cross-validated against each other:
//!
//! * [`LiveWell`] — the paper's streaming, single-pass analyzer. It keeps
//!   only a hash table from storage location to DDG level (the *live well*)
//!   and produces the two metrics every trace analysis yields: the
//!   **parallelism profile** and the **critical path length**. It scales to
//!   arbitrarily long traces.
//! * [`Ddg`] / [`DdgBuilder`] — an explicit, materialized graph for bounded
//!   traces, with typed edges (true/storage/control), value-lifetime and
//!   degree-of-sharing distributions, storage-occupancy profiles, DOT
//!   export, and resource-constrained list scheduling ([`schedule`]).
//!
//! Analyses are configured by [`AnalysisConfig`], which exposes exactly the
//! paper's switches — system-call policy, the three renaming switches
//! (registers / stack / non-stack data), and the instruction window size —
//! plus the extensions the paper describes without tabling: branch
//! prediction with misprediction firewalls ([`branch`]), finite issue width
//! ([`AnalysisConfig::with_issue_limit`]), memory disambiguation models
//! ([`MemoryModel`]), streaming value-lifetime/sharing statistics, and
//! named machine presets ([`machine`]).
//!
//! # How placement works
//!
//! The analyzer walks the serial trace once. For each dynamic instruction
//! that creates a value it computes the *completion level*
//!
//! ```text
//! Ldest = MAX(Lsrc1, Lsrc2, highestLevel [, Ddest]) + top
//! ```
//!
//! 1. **Sources** — each source location is looked up in the live well. A
//!    location never written before holds a *preexisting* value (a
//!    pre-initialized register or DATA word) recorded at level -1, so it
//!    delays nothing.
//! 2. **Floor** — `highestLevel` is the placement floor. It rises when a
//!    conservative system call firewalls the graph (to the deepest level
//!    yet used), when the instruction window displaces an instruction (to
//!    the displaced instruction's level), and when a modelled branch
//!    mispredicts (to the branch's resolution level).
//! 3. **Storage** — if the destination's storage class is *not* renamed,
//!    `Ddest` (the deepest use of the value currently in the destination)
//!    joins the `MAX`: the overwrite must wait for the old value's last
//!    reader. Renaming a class simply deletes this term — that is the whole
//!    mechanism behind Table 4.
//! 4. **Latency** — `top` is the class latency from Table 1.
//!
//! The instruction is then recorded: the profile histogram counts it at
//! `Ldest`, its sources' `deepest_use` advance to `Ldest`, and the
//! destination's live-well entry is replaced with `{avail: Ldest,
//! deepest_use: Ldest}`. Critical path length is the deepest `Ldest` plus
//! one; available parallelism is placed operations divided by that.
//!
//! # Examples
//!
//! Analyze the paper's Figure 1 trace at the dataflow limit:
//!
//! ```
//! use paragraph_core::{analyze, AnalysisConfig};
//! use paragraph_trace::synthetic;
//!
//! let report = analyze(synthetic::figure1(), &AnalysisConfig::dataflow_limit());
//! assert_eq!(report.critical_path_length(), 4);
//! assert_eq!(report.placed_ops(), 8);
//! assert_eq!(report.available_parallelism(), 2.0);
//! ```
//!
//! The same trace with storage dependencies (no renaming) matches Figure 2:
//!
//! ```
//! use paragraph_core::{analyze, AnalysisConfig, RenameSet};
//! use paragraph_trace::synthetic;
//!
//! let config = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
//! let report = analyze(synthetic::figure2(), &config);
//! assert_eq!(report.critical_path_length(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
pub mod artifact;
pub mod branch;
pub mod checkpoint;
mod config;
mod ddg;
mod dist;
mod error;
mod fasthash;
mod livewell;
pub mod machine;
mod memmodel;
pub mod parallel;
mod profile;
mod report;
pub mod schedule;
pub mod telemetry;
mod well;
mod window;

pub use analyze::{analyze, analyze_refs, analyze_slice, analyze_with_stats};
pub use checkpoint::{CheckpointError, TraceIdentity};
pub use config::{AnalysisConfig, RenameSet, SyscallPolicy, WindowSize};
pub use ddg::{Ddg, DdgBuilder, DdgNode, DepKind, Edge, NodeId};
pub use dist::Distribution;
pub use error::AnalysisError;
pub use livewell::{FlatLiveWell, LiveWell, LiveWellImpl, SegmentOutcome};
pub use memmodel::MemoryModel;
pub use parallel::analyze_parallel;
pub use profile::{ParallelismProfile, ProfileBin};
pub use report::AnalysisReport;
pub use well::{FlatWell, MemTable, PagedWell};
pub use window::WindowLimiter;

/// The paper's latency model, re-exported for convenience (Table 1).
pub use paragraph_isa::LatencyModel;

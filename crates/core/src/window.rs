//! The sliding instruction window (Figure 6 of the paper).

use crate::config::WindowSize;
use std::collections::VecDeque;

/// Limits how many contiguous trace instructions are visible at once.
///
/// The window slides along the trace. As an instruction enters, the oldest
/// instruction is displaced; once displaced, it can no longer affect the
/// placement of future instructions. Displacement is implemented, as in the
/// paper, by a *firewall*: the placement floor rises to the displaced
/// instruction's level, so no later instruction can be placed above it. "The
/// first level available for placement is always the level at the bottom of
/// the instruction window", and the resulting DDG cannot contain more than W
/// operations in any single level.
///
/// Admission is two-phase, because the displaced instruction constrains the
/// placement of the one entering: call [`WindowLimiter::make_room`] first
/// (raising the floor with whatever it returns), place the instruction, then
/// [`WindowLimiter::push`] it.
///
/// All trace instructions occupy window slots, including control
/// instructions that are never placed in the DDG — the window models visible
/// *trace* context, not graph nodes.
///
/// The payload type `T` travels with each placed slot; the streaming
/// analyzer uses `()` while the explicit-graph builder uses node ids.
///
/// # Examples
///
/// ```
/// use paragraph_core::{WindowLimiter, WindowSize};
///
/// let mut window: WindowLimiter = WindowLimiter::new(WindowSize::bounded(2));
/// assert_eq!(window.make_room(), None);
/// window.push(Some((5, ())));                    // level-5 op enters
/// assert_eq!(window.make_room(), None);
/// window.push(None);                             // a branch enters
/// assert_eq!(window.make_room(), Some((5, ()))); // displaces the level-5 op
/// window.push(Some((9, ())));
/// ```
#[derive(Debug, Clone)]
pub struct WindowLimiter<T = ()> {
    size: Option<usize>,
    slots: VecDeque<Option<(i64, T)>>,
}

impl<T> WindowLimiter<T> {
    /// Creates a limiter for the given window size.
    pub fn new(size: WindowSize) -> WindowLimiter<T> {
        let limit = size.limit();
        WindowLimiter {
            size: limit,
            slots: VecDeque::with_capacity(limit.unwrap_or(0).min(1 << 20)),
        }
    }

    /// Makes room for the next trace instruction, displacing the oldest one
    /// if the window is full.
    ///
    /// Returns the completion level (and payload) of a displaced *placed*
    /// instruction; the caller must raise its placement floor to at least
    /// that level before placing the entering instruction. Displacing an
    /// unplaced instruction (or an infinite window) returns `None`.
    pub fn make_room(&mut self) -> Option<(i64, T)> {
        let limit = self.size?;
        if self.slots.len() == limit {
            self.slots.pop_front().flatten()
        } else {
            None
        }
    }

    /// Records the instruction that just entered the window.
    ///
    /// `placed` is its completion level and payload, or `None` for
    /// instructions not placed in the DDG (control instructions, and system
    /// calls under the optimistic policy).
    pub fn push(&mut self, placed: Option<(i64, T)>) {
        if self.size.is_some() {
            self.slots.push_back(placed);
        }
    }

    /// Number of instructions currently in the window (always 0 for an
    /// infinite window, which tracks nothing).
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// Whether this limiter actually bounds the window.
    pub fn is_bounded(&self) -> bool {
        self.size.is_some()
    }
}

impl WindowLimiter<()> {
    /// The completion levels of the resident slots, oldest first (`None`
    /// for unplaced instructions), for checkpointing.
    pub(crate) fn slot_levels(&self) -> impl Iterator<Item = Option<i64>> + '_ {
        self.slots.iter().map(|s| s.as_ref().map(|&(l, ())| l))
    }

    /// Rebuilds a limiter from checkpointed slots; `None` if the slots
    /// overflow the configured window.
    pub(crate) fn from_slot_levels(
        size: WindowSize,
        levels: Vec<Option<i64>>,
    ) -> Option<WindowLimiter<()>> {
        let mut window = WindowLimiter::new(size);
        match window.size {
            Some(limit) if levels.len() > limit => return None,
            None if !levels.is_empty() => return None,
            _ => {}
        }
        window.slots = levels.into_iter().map(|l| l.map(|l| (l, ()))).collect();
        Some(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(w: &mut WindowLimiter, level: Option<i64>) -> Option<i64> {
        let displaced = w.make_room().map(|(l, ())| l);
        w.push(level.map(|l| (l, ())));
        displaced
    }

    #[test]
    fn infinite_window_never_displaces() {
        let mut w: WindowLimiter = WindowLimiter::new(WindowSize::Infinite);
        for i in 0..10_000 {
            assert_eq!(admit(&mut w, Some(i)), None);
        }
        assert_eq!(w.occupancy(), 0);
        assert!(!w.is_bounded());
    }

    #[test]
    fn bounded_window_displaces_fifo_before_admission() {
        let mut w: WindowLimiter = WindowLimiter::new(WindowSize::bounded(3));
        assert_eq!(admit(&mut w, Some(1)), None);
        assert_eq!(admit(&mut w, Some(2)), None);
        assert_eq!(admit(&mut w, Some(3)), None);
        assert_eq!(admit(&mut w, Some(4)), Some(1));
        assert_eq!(admit(&mut w, Some(5)), Some(2));
        assert_eq!(w.occupancy(), 3);
    }

    #[test]
    fn unplaced_instructions_occupy_slots_but_displace_nothing() {
        let mut w: WindowLimiter = WindowLimiter::new(WindowSize::bounded(2));
        assert_eq!(admit(&mut w, None), None);
        assert_eq!(admit(&mut w, None), None);
        assert_eq!(admit(&mut w, Some(7)), None); // displaces an unplaced slot
        assert_eq!(admit(&mut w, Some(8)), None); // displaces the other
        assert_eq!(admit(&mut w, Some(9)), Some(7));
    }

    #[test]
    fn window_of_one_displaces_immediately() {
        let mut w: WindowLimiter = WindowLimiter::new(WindowSize::bounded(1));
        assert_eq!(admit(&mut w, Some(4)), None);
        assert_eq!(admit(&mut w, Some(6)), Some(4));
        assert_eq!(admit(&mut w, Some(8)), Some(6));
    }

    #[test]
    fn payload_travels_with_slot() {
        let mut w: WindowLimiter<&'static str> = WindowLimiter::new(WindowSize::bounded(1));
        assert_eq!(w.make_room(), None);
        w.push(Some((3, "first")));
        assert_eq!(w.make_room(), Some((3, "first")));
        w.push(Some((5, "second")));
    }
}

//! Intra-trace parallel analysis: one trace, many cores, one answer.
//!
//! The sweep engine parallelizes *across* analyses; this module
//! parallelizes *within* one. The trace is cut at **firewall points** —
//! immediately after each conservative system call — and the resulting
//! segments are analyzed concurrently by fresh [`LiveWell`] instances,
//! then spliced back together with
//! [`merge_segment`](crate::LiveWellImpl::merge_segment).
//!
//! # Why a firewall cut is exact
//!
//! A conservative system call raises the placement floor to the deepest
//! level yet used, *after* its own placement. At that instant every level
//! the analyzer still remembers — value availabilities, deepest uses,
//! resident window slots, memory-ordering bounds, issue-ledger counters —
//! is at or below the floor. The placement rule
//! `Ldest = MAX(Lsrc..., floor [, Ddest]) + top` therefore absorbs all of
//! that state into its `floor` term: from the cut onward, the only thing
//! the past contributes is a single number. A fresh analyzer starting at
//! floor `-1` over the remaining records consequently places every
//! operation exactly `floor_at_cut + 1` levels lower than the sequential
//! pass would (preexisting `-1` sources behave as "at or below the floor"
//! in both systems), and the segment's relative levels splice back with a
//! constant shift. The merged report is **byte-identical** to the
//! sequential oracle — the same differential discipline the paged live
//! well and the sweep scheduler established — which the tests below
//! enforce for every jobs count.
//!
//! Contrast with the warm-up-prefix idiom (replay W records and discard
//! their placements): a fixed warm-up only *approximates* the floor at a
//! segment start, because the sequential floor is a running maximum over
//! every displaced record, computed from placements that themselves depend
//! on earlier state. The firewall cut needs no warm-up and no
//! approximation; the trade-off is that cut points exist only where the
//! trace makes syscalls. Traces without interior syscalls (and the
//! configurations below) fall back to the sequential path.
//!
//! # Eligibility
//!
//! A configuration is segment-parallel when its merged state is exactly
//! reconstructible from per-segment outcomes. [`eligibility`] rejects:
//!
//! * **value statistics** — a value created in one segment retires in a
//!   later one; per-segment lifetime/sharing distributions cannot see it;
//! * **branch prediction** — predictor counters and history carry across
//!   cuts;
//! * **a live-well cap** — eviction decisions depend on global occupancy;
//! * **optimistic syscalls** — no firewalls, so no cut points;
//! * **stall-always branching over memory-sourced branches** — such a
//!   branch materializes live-well entries on the skip path, which skews
//!   the peak-live-values accounting across a cut.
//!
//! Everything else — any window size, any renaming set, either memory
//! model, issue limits, perfect or stall-always branches — parallelizes
//! exactly.

use crate::branch::BranchPolicy;
use crate::config::{AnalysisConfig, SyscallPolicy};
use crate::livewell::{LiveWell, SegmentOutcome};
use crate::report::AnalysisReport;
use paragraph_isa::OpClass;
use paragraph_trace::{Loc, TraceRecord};
use std::sync::atomic::{AtomicU64, Ordering};

/// Records between shared-progress updates inside a segment worker.
const PROGRESS_STRIDE: usize = 1 << 16;

/// Resolves a user-facing jobs count: `0` means "all cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

/// Whether `config` can analyze `records` segment-parallel with an exactly
/// reconstructible merge. `Err` carries the reason for the sequential
/// fallback (surfaced by the CLI under `--progress`).
///
/// # Errors
///
/// Returns the human-readable reason parallel analysis would not be
/// byte-identical to the sequential oracle.
pub fn eligibility(records: &[TraceRecord], config: &AnalysisConfig) -> Result<(), &'static str> {
    if config.syscall_policy() != SyscallPolicy::Conservative {
        return Err("optimistic syscalls insert no firewalls to cut at");
    }
    if config.value_stats() {
        return Err("value lifetime/sharing statistics retire values across cuts");
    }
    if matches!(config.branch_policy(), BranchPolicy::Predict(_)) {
        return Err("branch predictor state carries across cuts");
    }
    if config.live_well_cap().is_some() {
        return Err("live-well eviction depends on global occupancy");
    }
    if matches!(config.branch_policy(), BranchPolicy::StallAlways)
        && records.iter().any(|r| {
            r.class() == OpClass::Branch && r.srcs().iter().any(|s| matches!(s, Loc::Mem(_)))
        })
    {
        return Err("stall-always branches with memory sources touch the live well unplaced");
    }
    Ok(())
}

/// Plans firewall cuts over `records[start..]` for `jobs` workers: returns
/// strictly increasing segment boundaries in `(start, records.len())`,
/// each immediately after a system-call record. Segment `i` is
/// `[boundary[i-1], boundary[i])` (with `start` before the first and
/// `records.len()` after the last). Boundaries track the ideal equal-size
/// split as closely as the trace's syscalls allow; an empty result means
/// there is nothing to parallelize.
pub fn plan_cuts(records: &[TraceRecord], start: usize, jobs: usize) -> Vec<usize> {
    let len = records.len();
    if jobs < 2 || start >= len {
        return Vec::new();
    }
    // Candidate cut points: one past each syscall, excluding a cut that
    // would leave an empty final segment.
    let candidates: Vec<usize> = records[start..len.saturating_sub(1)]
        .iter()
        .enumerate()
        .filter(|(_, r)| r.class() == OpClass::Syscall)
        .map(|(i, _)| start + i + 1)
        .collect();
    let mut boundaries = Vec::new();
    let span = len - start;
    for k in 1..jobs {
        let target = start + span * k / jobs;
        let from = candidates.partition_point(|&c| c < target);
        let Some(&cut) = candidates.get(from) else {
            break;
        };
        if boundaries.last().is_none_or(|&prev| cut > prev) {
            boundaries.push(cut);
        }
    }
    boundaries
}

/// The segment workers' configuration: identical placement behaviour, but
/// an effectively unbounded profile-bin budget so per-level counts stay
/// exact (bin width 1) for the splice. The primary analyzer keeps the
/// caller's binning; merged levels re-bin identically to the sequential
/// pass because coarsening is a pure function of the level/count multiset.
pub fn segment_config(config: &AnalysisConfig) -> AnalysisConfig {
    config.clone().with_profile_bins(usize::MAX)
}

/// Analyzes one segment with a fresh live well and exports its outcome.
/// `progress` accumulates records processed (shared across workers for
/// heartbeat reporting). Returns `None` only on an internal invariant
/// break (an inexact segment profile), which callers treat as "redo
/// sequentially".
pub fn run_segment(
    segment: &[TraceRecord],
    config: &AnalysisConfig,
    progress: &AtomicU64,
) -> Option<SegmentOutcome> {
    let mut analyzer = LiveWell::new(segment_config(config));
    for slice in segment.chunks(PROGRESS_STRIDE) {
        analyzer.process_slice(slice);
        progress.fetch_add(slice.len() as u64, Ordering::Relaxed);
    }
    analyzer.into_segment_outcome()
}

/// Analyzes `records` across up to `jobs` threads (0 = all cores) and
/// returns a report byte-identical to the sequential
/// [`analyze_refs`](crate::analyze_refs). Ineligible configurations,
/// traces without interior syscalls, and `jobs < 2` all run sequentially
/// on the calling thread; segment `0` always runs on the calling thread
/// so the caller's thread-local instrumentation attributes it naturally.
pub fn analyze_parallel(
    records: &[TraceRecord],
    config: &AnalysisConfig,
    jobs: usize,
) -> AnalysisReport {
    let jobs = effective_jobs(jobs);
    let sequential = |records: &[TraceRecord]| {
        let mut analyzer = LiveWell::new(config.clone());
        analyzer.process_slice(records);
        analyzer.finish()
    };
    if jobs < 2 || eligibility(records, config).is_err() {
        return sequential(records);
    }
    let boundaries = plan_cuts(records, 0, jobs);
    if boundaries.is_empty() {
        return sequential(records);
    }
    let progress = AtomicU64::new(0);
    let (primary, outcomes) = std::thread::scope(|scope| {
        let handles: Vec<_> = boundaries
            .iter()
            .zip(boundaries.iter().skip(1).chain([&records.len()]))
            .map(|(&from, &to)| {
                let segment = &records[from..to];
                let progress = &progress;
                scope.spawn(move || run_segment(segment, config, progress))
            })
            .collect();
        let mut primary = LiveWell::new(config.clone());
        primary.process_slice(&records[..boundaries[0]]);
        let outcomes: Option<Vec<SegmentOutcome>> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        (primary, outcomes)
    });
    match outcomes {
        Some(outcomes) => {
            let mut primary = primary;
            for outcome in &outcomes {
                primary.merge_segment(outcome);
            }
            primary.finish()
        }
        // Unreachable by construction (segment_config keeps profiles
        // exact); the sequential oracle is always a correct answer.
        None => sequential(records),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_refs;
    use crate::config::{RenameSet, WindowSize};
    use crate::MemoryModel;
    use paragraph_trace::synthetic;

    /// Every differential check is on the serialized report: byte equality
    /// or nothing.
    fn assert_identical(records: &[TraceRecord], config: &AnalysisConfig, jobs: usize) {
        let sequential = analyze_refs(records, config);
        let parallel = analyze_parallel(records, config, jobs);
        assert_eq!(
            sequential.to_json(),
            parallel.to_json(),
            "jobs={jobs} config={config:?}"
        );
    }

    fn configs() -> Vec<AnalysisConfig> {
        vec![
            AnalysisConfig::dataflow_limit(),
            AnalysisConfig::dataflow_limit().with_renames(RenameSet::none()),
            AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(64)),
            AnalysisConfig::dataflow_limit().with_issue_limit(4),
            AnalysisConfig::dataflow_limit().with_memory_model(MemoryModel::NoDisambiguation),
            AnalysisConfig::dataflow_limit()
                .with_branch_policy(BranchPolicy::StallAlways)
                .with_window(WindowSize::bounded(256)),
        ]
    }

    #[test]
    fn parallel_report_is_byte_identical_across_jobs_and_configs() {
        // random_trace emits ~2% syscalls — plenty of cut points.
        let trace = synthetic::random_trace(20_000, 11);
        for config in configs() {
            for jobs in [2, 4, 8] {
                assert_identical(&trace, &config, jobs);
            }
        }
    }

    #[test]
    fn parallel_report_is_byte_identical_across_seeds() {
        let config = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        for seed in 0..6 {
            let trace = synthetic::random_trace(5_000, seed);
            assert_identical(&trace, &config, 4);
        }
    }

    #[test]
    fn ineligible_configs_fall_back_to_the_sequential_answer() {
        let trace = synthetic::random_trace(4_000, 5);
        let gated = vec![
            AnalysisConfig::dataflow_limit().with_value_stats(true),
            AnalysisConfig::dataflow_limit().with_live_well_cap(32),
            AnalysisConfig::dataflow_limit().with_syscall_policy(SyscallPolicy::Optimistic),
        ];
        for config in gated {
            assert!(eligibility(&trace, &config).is_err());
            // The fallback still answers, and still matches.
            assert_identical(&trace, &config, 8);
        }
    }

    #[test]
    fn traces_without_syscalls_run_sequentially() {
        let trace = synthetic::interleaved_chains(8, 500);
        assert!(plan_cuts(&trace, 0, 8).is_empty());
        assert_identical(&trace, &AnalysisConfig::dataflow_limit(), 8);
    }

    #[test]
    fn cuts_land_after_syscalls_and_balance_segments() {
        let trace = synthetic::random_trace(50_000, 3);
        let cuts = plan_cuts(&trace, 0, 4);
        assert!(!cuts.is_empty() && cuts.len() <= 3);
        for window in cuts.windows(2) {
            assert!(window[0] < window[1]);
        }
        for &cut in &cuts {
            assert!(cut > 0 && cut < trace.len());
            assert_eq!(trace[cut - 1].class(), OpClass::Syscall);
        }
        // With ~2% syscalls the realized segment sizes should be within a
        // few percent of the ideal quarter.
        let ideal = trace.len() / 4;
        for (i, &cut) in cuts.iter().enumerate() {
            let target = ideal * (i + 1);
            assert!(
                cut.abs_diff(target) < trace.len() / 10,
                "cut {cut} vs {target}"
            );
        }
    }

    #[test]
    fn resumed_primary_merges_identically() {
        // Simulate the CLI's checkpoint-resume path: analyze a prefix,
        // round-trip through a checkpoint, then finish the rest through
        // the segment-parallel splice. The result must equal the
        // uninterrupted sequential pass byte for byte.
        let trace = synthetic::random_trace(20_000, 7);
        let config = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(128));
        let sequential = analyze_refs(&trace, &config);

        let resume_at = 6_000;
        let mut prefix = LiveWell::new(config.clone());
        prefix.process_slice(&trace[..resume_at]);
        let mut saved = Vec::new();
        prefix.save_checkpoint(&mut saved).unwrap();
        let mut primary = LiveWell::resume_from(saved.as_slice(), config.clone()).unwrap();

        let cuts = plan_cuts(&trace, resume_at, 4);
        assert!(!cuts.is_empty());
        let progress = AtomicU64::new(0);
        primary.process_slice(&trace[resume_at..cuts[0]]);
        let ends: Vec<usize> = cuts[1..].iter().copied().chain([trace.len()]).collect();
        for (&from, &to) in cuts.iter().zip(&ends) {
            let outcome = run_segment(&trace[from..to], &config, &progress).unwrap();
            primary.merge_segment(&outcome);
        }
        assert_eq!(
            progress.load(Ordering::Relaxed),
            (trace.len() - cuts[0]) as u64
        );
        assert_eq!(primary.finish().to_json(), sequential.to_json());
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }
}

//! Memory-table storage layer for the live well.
//!
//! The paper's working-set lament — "a very large memory (32 MBytes) was
//! required to hold the working set of Paragraph" — makes the live well's
//! memory table the hot data structure of the whole analysis: three hashed
//! probes per dynamic instruction (two source reads, one destination
//! write), plus a full collect-and-sort scan on every eviction batch in
//! bounded mode. This module exploits what a flat hash map cannot: word
//! addresses are *spatially local*. Programs hammer the same stack frame,
//! the same heap object, the same global — addresses that share all but
//! their low bits.
//!
//! [`PagedWell`] is a two-level structure: a page directory (hash map keyed
//! by `addr >> PAGE_SHIFT`) pointing into dense fixed-size pages of
//! [`ValueRecord`] slots with an occupancy bitmap. A lookup that stays on
//! the most recently touched page — the overwhelmingly common case — is a
//! shift, a compare, a mask and one pointer chase, with no hashing at all.
//! Each page additionally carries a `min_bound` summary (a lower bound on
//! the smallest `deepest_use` among its occupied slots) so
//! `enforce_live_well_cap` can rank whole pages and stop scanning as soon
//! as the eviction threshold is provably below every unscanned page,
//! instead of collecting and sorting every resident address.
//!
//! [`FlatWell`] is the legacy single-level table, retained as the reference
//! model for the equivalence tests and as the "before" leg of the hot-path
//! benchmark. Both implement [`MemTable`], and the analyzer
//! ([`LiveWellImpl`](crate::livewell::LiveWellImpl)) is generic over it —
//! monomorphized, so the abstraction costs nothing at run time.
//!
//! Every operation is observation-equivalent across implementations: same
//! lookups, same eviction *set* (the exact `excess` entries with the
//! smallest `(deepest_use, addr)` key), same sorted iteration order. The
//! PGCP checkpoint serializes entries in sorted-address order, so the bytes
//! are layout-independent by construction; the model-based property test in
//! this module and the cross-layout checkpoint tests in `livewell.rs` pin
//! that down.

use crate::fasthash::FastMap;
use std::cell::Cell;
use std::collections::hash_map::Entry;

/// log2 of the page size: 64 word-addresses per page, so a page's occupancy
/// bitmap is exactly one `u64` and a page weighs ~1.5 KiB — comfortably
/// inside L1 while it is hot.
const PAGE_SHIFT: u32 = 6;
/// Slots per page.
const PAGE_SLOTS: usize = 1 << PAGE_SHIFT;
/// Low-bit mask selecting the slot within a page.
const SLOT_MASK: u64 = (PAGE_SLOTS as u64) - 1;
/// Hot-page cache sentinel. No real page number can equal it: page numbers
/// are `addr >> PAGE_SHIFT`, which caps at `u64::MAX >> PAGE_SHIFT`.
const NO_PAGE: u64 = u64::MAX;

/// A live-well entry: where a value became available, and the deepest level
/// at which it has been used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRecord {
    /// Number of operations that have read this value (degree of sharing).
    /// Saturating: a location read more than `u32::MAX` times pins at the
    /// ceiling instead of wrapping and corrupting the sharing distribution.
    pub(crate) readers: u32,
    /// Completion level of the operation that created the value. Values that
    /// existed when the program began (pre-initialized registers, DATA words)
    /// are recorded at level -1, "the level immediately preceding the
    /// topologically highest level in the DDG", so they delay nothing.
    pub(crate) avail: i64,
    /// Deepest completion level of any operation that has read this value
    /// (at least `avail`). This is the paper's `Ddest`: the level a
    /// non-renamed overwrite of the location must be placed below.
    pub(crate) deepest_use: i64,
}

impl ValueRecord {
    pub(crate) fn preexisting() -> ValueRecord {
        ValueRecord {
            readers: 0,
            avail: -1,
            deepest_use: -1,
        }
    }
}

/// Storage abstraction for the live well's memory table.
///
/// The analyzer is generic over this trait (and monomorphized per
/// implementation); [`PagedWell`] is the default, [`FlatWell`] the legacy
/// reference. All implementations must be observation-equivalent — the
/// equivalence suite treats `FlatWell` as the executable specification.
///
/// This trait is sealed: downstream crates can name it in bounds but not
/// implement it, so the equivalence obligations stay inside this crate.
pub trait MemTable: sealed::Sealed + std::fmt::Debug + Default {
    /// Number of resident entries.
    fn len(&self) -> usize;

    /// True when no entries are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The record at `addr`, if resident.
    fn get(&self, addr: u64) -> Option<&ValueRecord>;

    /// The record at `addr`, inserting a preexisting (level -1) record if
    /// the address is not resident — the live well's read-side primitive.
    fn get_or_insert_preexisting(&mut self, addr: u64) -> &mut ValueRecord;

    /// Inserts `record` at `addr`, returning the displaced record if the
    /// address was resident.
    fn insert(&mut self, addr: u64, record: ValueRecord) -> Option<ValueRecord>;

    /// Removes and returns the record at `addr`.
    fn remove(&mut self, addr: u64) -> Option<ValueRecord>;

    /// Visits every entry in ascending address order — the checkpoint
    /// serialization order, identical across implementations.
    fn for_each_sorted<F: FnMut(u64, &ValueRecord)>(&self, f: F);

    /// Visits every resident record in unspecified order (used to retire
    /// survivors into the order-independent lifetime/sharing histograms).
    fn for_each_value<F: FnMut(&ValueRecord)>(&self, f: F);

    /// Evicts exactly `min(excess, len)` entries — those with the smallest
    /// `(deepest_use, addr)` keys, so the eviction set is deterministic and
    /// identical across implementations — calling `retire` on each removed
    /// record. Returns the number evicted.
    fn evict_coldest<F: FnMut(ValueRecord)>(&mut self, excess: usize, retire: F) -> u64;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::FlatWell {}
    impl Sealed for super::PagedWell {}
}

/// The legacy flat memory table: one hash probe per access.
///
/// Kept as the executable reference model for [`PagedWell`] and as the
/// "before" leg of the hot-path benchmark. Its eviction path carries the
/// shared fix: the threshold is found with `select_nth_unstable` (O(n))
/// instead of sorting the whole table (O(n log n)).
#[derive(Debug, Default)]
pub struct FlatWell {
    map: FastMap<u64, ValueRecord>,
}

impl MemTable for FlatWell {
    #[inline]
    fn len(&self) -> usize {
        self.map.len()
    }

    #[inline]
    fn get(&self, addr: u64) -> Option<&ValueRecord> {
        self.map.get(&addr)
    }

    #[inline]
    fn get_or_insert_preexisting(&mut self, addr: u64) -> &mut ValueRecord {
        self.map
            .entry(addr)
            .or_insert_with(ValueRecord::preexisting)
    }

    #[inline]
    fn insert(&mut self, addr: u64, record: ValueRecord) -> Option<ValueRecord> {
        self.map.insert(addr, record)
    }

    #[inline]
    fn remove(&mut self, addr: u64) -> Option<ValueRecord> {
        self.map.remove(&addr)
    }

    fn for_each_sorted<F: FnMut(u64, &ValueRecord)>(&self, mut f: F) {
        let mut addrs: Vec<u64> = self.map.keys().copied().collect();
        addrs.sort_unstable();
        for addr in addrs {
            if let Some(record) = self.map.get(&addr) {
                f(addr, record);
            }
        }
    }

    fn for_each_value<F: FnMut(&ValueRecord)>(&self, mut f: F) {
        for record in self.map.values() {
            f(record);
        }
    }

    fn evict_coldest<F: FnMut(ValueRecord)>(&mut self, excess: usize, mut retire: F) -> u64 {
        if excess == 0 || self.map.is_empty() {
            return 0;
        }
        let mut coldest: Vec<(i64, u64)> = self
            .map
            .iter()
            .map(|(&addr, record)| (record.deepest_use, addr))
            .collect();
        if excess < coldest.len() {
            // Partition around the k-th smallest (deepest_use, addr) key:
            // linear in the table instead of the old full sort.
            coldest.select_nth_unstable(excess - 1);
            coldest.truncate(excess);
        }
        let mut evicted = 0u64;
        for &(_, addr) in &coldest {
            if let Some(old) = self.map.remove(&addr) {
                retire(old);
                evicted += 1;
            }
        }
        evicted
    }
}

/// One 64-slot page of the paged well. `occupied` is the slot bitmap;
/// `min_bound` is a *lazy lower bound* on the smallest `deepest_use` among
/// occupied slots: tightened on insert, left stale-low when a slot's
/// `deepest_use` rises or the minimum is removed (both only make the true
/// minimum larger, so the bound stays valid), refreshed exactly whenever an
/// eviction scan touches the page.
#[derive(Debug, Clone)]
struct Page {
    occupied: u64,
    min_bound: i64,
    slots: [ValueRecord; PAGE_SLOTS],
}

impl Page {
    fn empty() -> Page {
        Page {
            occupied: 0,
            min_bound: i64::MAX,
            slots: [ValueRecord::preexisting(); PAGE_SLOTS],
        }
    }
}

/// The paged live-well memory table (this PR's tentpole).
///
/// Two levels: a directory mapping page number (`addr >> 6`) to an index
/// into a pool of dense 64-slot pages. Consecutive accesses to the same
/// page — the common case, given the spatial locality of stack frames,
/// heap objects and globals — skip the directory entirely via a two-entry
/// hot-page cache: the lookup is then a shift, a compare and an array
/// index. Two entries instead of one because real traces interleave two
/// hot streams (a stack frame and a heap object); a single entry thrashes
/// on exactly that alternation. Empty pages return to a free list, and
/// each page's `min_bound` summary lets [`MemTable::evict_coldest`] stop
/// scanning as soon as the k-th coldest candidate is provably colder than
/// every unscanned page.
#[derive(Debug)]
pub struct PagedWell {
    dir: FastMap<u64, u32>,
    pages: Vec<Page>,
    free: Vec<u32>,
    len: usize,
    /// Hot-page cache: page numbers and pool indices of the two most
    /// recently touched pages, most recent first. `Cell` so the read path
    /// (`get`) can refresh it too.
    cache_page_no: [Cell<u64>; 2],
    cache_idx: [Cell<u32>; 2],
}

impl Default for PagedWell {
    fn default() -> PagedWell {
        PagedWell {
            dir: FastMap::default(),
            pages: Vec::new(),
            free: Vec::new(),
            len: 0,
            cache_page_no: [Cell::new(NO_PAGE), Cell::new(NO_PAGE)],
            cache_idx: [Cell::new(0), Cell::new(0)],
        }
    }
}

#[inline]
fn split(addr: u64) -> (u64, usize) {
    (addr >> PAGE_SHIFT, (addr & SLOT_MASK) as usize)
}

impl PagedWell {
    /// Records `page_no -> idx` as the most recent cache entry, demoting
    /// the previous front to the second slot.
    #[inline]
    fn cache_front(&self, page_no: u64, idx: u32) {
        self.cache_page_no[1].set(self.cache_page_no[0].get());
        self.cache_idx[1].set(self.cache_idx[0].get());
        self.cache_page_no[0].set(page_no);
        self.cache_idx[0].set(idx);
    }

    /// Cache lookup: front entry, then second entry (promoted to front on
    /// a hit, so two alternating hot pages each stay resident).
    #[inline]
    fn cache_get(&self, page_no: u64) -> Option<u32> {
        if self.cache_page_no[0].get() == page_no {
            return Some(self.cache_idx[0].get());
        }
        if self.cache_page_no[1].get() == page_no {
            let idx = self.cache_idx[1].get();
            self.cache_page_no[1].set(self.cache_page_no[0].get());
            self.cache_idx[1].set(self.cache_idx[0].get());
            self.cache_page_no[0].set(page_no);
            self.cache_idx[0].set(idx);
            return Some(idx);
        }
        None
    }

    /// Pool index of `page_no`, going through the hot-page cache.
    #[inline]
    fn page_index(&self, page_no: u64) -> Option<u32> {
        if let Some(idx) = self.cache_get(page_no) {
            return Some(idx);
        }
        let idx = *self.dir.get(&page_no)?;
        self.cache_front(page_no, idx);
        Some(idx)
    }

    /// Pool index of `page_no`, allocating (from the free list when
    /// possible) if the page does not exist yet.
    #[inline]
    fn page_index_or_create(&mut self, page_no: u64) -> u32 {
        if let Some(idx) = self.cache_get(page_no) {
            return idx;
        }
        let idx = match self.dir.entry(page_no) {
            Entry::Occupied(entry) => *entry.get(),
            Entry::Vacant(vacant) => {
                // Freed pages are reset (occupied = 0, min_bound = MAX) when
                // they enter the free list, so reuse needs no re-init.
                let idx = match self.free.pop() {
                    Some(idx) => idx,
                    None => {
                        let idx = self.pages.len() as u32;
                        self.pages.push(Page::empty());
                        idx
                    }
                };
                *vacant.insert(idx)
            }
        };
        self.cache_front(page_no, idx);
        idx
    }
}

impl MemTable for PagedWell {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, addr: u64) -> Option<&ValueRecord> {
        let (page_no, slot) = split(addr);
        let page = &self.pages[self.page_index(page_no)? as usize];
        if page.occupied & (1u64 << slot) != 0 {
            Some(&page.slots[slot])
        } else {
            None
        }
    }

    #[inline]
    fn get_or_insert_preexisting(&mut self, addr: u64) -> &mut ValueRecord {
        let (page_no, slot) = split(addr);
        let idx = self.page_index_or_create(page_no) as usize;
        let page = &mut self.pages[idx];
        let bit = 1u64 << slot;
        if page.occupied & bit == 0 {
            page.occupied |= bit;
            page.slots[slot] = ValueRecord::preexisting();
            page.min_bound = page.min_bound.min(-1);
            self.len += 1;
        }
        &mut page.slots[slot]
    }

    #[inline]
    fn insert(&mut self, addr: u64, record: ValueRecord) -> Option<ValueRecord> {
        let (page_no, slot) = split(addr);
        let idx = self.page_index_or_create(page_no) as usize;
        let page = &mut self.pages[idx];
        let bit = 1u64 << slot;
        page.min_bound = page.min_bound.min(record.deepest_use);
        if page.occupied & bit != 0 {
            Some(std::mem::replace(&mut page.slots[slot], record))
        } else {
            page.occupied |= bit;
            page.slots[slot] = record;
            self.len += 1;
            None
        }
    }

    fn remove(&mut self, addr: u64) -> Option<ValueRecord> {
        let (page_no, slot) = split(addr);
        let idx = self.page_index(page_no)?;
        let page = &mut self.pages[idx as usize];
        let bit = 1u64 << slot;
        if page.occupied & bit == 0 {
            return None;
        }
        page.occupied &= !bit;
        self.len -= 1;
        let old = page.slots[slot];
        if page.occupied == 0 {
            page.min_bound = i64::MAX;
            self.dir.remove(&page_no);
            self.free.push(idx);
            for entry in &self.cache_page_no {
                if entry.get() == page_no {
                    entry.set(NO_PAGE);
                }
            }
        }
        // A non-empty page's min_bound may now be stale-low (the removed
        // record could have been the minimum); stale-low is still a valid
        // lower bound, so eviction stays exact.
        Some(old)
    }

    fn for_each_sorted<F: FnMut(u64, &ValueRecord)>(&self, mut f: F) {
        // Sorting P page numbers replaces the flat table's sort of all N
        // addresses (N up to 64·P) — a checkpoint-path win on top of the
        // hot-path one.
        let mut page_nos: Vec<u64> = self.dir.keys().copied().collect();
        page_nos.sort_unstable();
        for page_no in page_nos {
            let Some(&idx) = self.dir.get(&page_no) else {
                continue;
            };
            let page = &self.pages[idx as usize];
            let mut bits = page.occupied;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f((page_no << PAGE_SHIFT) | slot as u64, &page.slots[slot]);
            }
        }
    }

    fn for_each_value<F: FnMut(&ValueRecord)>(&self, mut f: F) {
        for &idx in self.dir.values() {
            let page = &self.pages[idx as usize];
            let mut bits = page.occupied;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(&page.slots[slot]);
            }
        }
    }

    fn evict_coldest<F: FnMut(ValueRecord)>(&mut self, excess: usize, mut retire: F) -> u64 {
        if excess == 0 || self.len == 0 {
            return 0;
        }
        let excess = excess.min(self.len);
        // Rank pages by their summaries, coldest lower bound first.
        let mut ranked: Vec<(i64, u64, u32)> = self
            .dir
            .iter()
            .map(|(&page_no, &idx)| (self.pages[idx as usize].min_bound, page_no, idx))
            .collect();
        ranked.sort_unstable();
        // Scan pages in summary order, accumulating (deepest_use, addr)
        // candidates, until the k-th coldest candidate is strictly below
        // every unscanned page's lower bound. Ties must keep scanning: an
        // unscanned page with min_bound == threshold could hold an entry
        // that wins the address tie-break. Stale-low bounds only make this
        // scan longer, never wrong.
        let mut candidates: Vec<(i64, u64)> = Vec::new();
        for &(bound, page_no, idx) in &ranked {
            if candidates.len() >= excess {
                let (_, &mut kth, _) = candidates.select_nth_unstable(excess - 1);
                if kth.0 < bound {
                    break;
                }
            }
            let page = &mut self.pages[idx as usize];
            let mut true_min = i64::MAX;
            let mut bits = page.occupied;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let deepest = page.slots[slot].deepest_use;
                true_min = true_min.min(deepest);
                candidates.push((deepest, (page_no << PAGE_SHIFT) | slot as u64));
            }
            // The scan computed the exact minimum: refresh the summary.
            page.min_bound = true_min;
        }
        if excess < candidates.len() {
            candidates.select_nth_unstable(excess - 1);
            candidates.truncate(excess);
        }
        let mut evicted = 0u64;
        for &(_, addr) in &candidates {
            if let Some(old) = self.remove(addr) {
                retire(old);
                evicted += 1;
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Deterministic splitmix64 — the tests' only randomness source.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn record(avail: i64, deepest_use: i64, readers: u32) -> ValueRecord {
        ValueRecord {
            readers,
            avail,
            deepest_use,
        }
    }

    /// Draws an address from a mix of the patterns real traces show:
    /// a dense "stack" window, strided "heap" arrays, page-boundary
    /// straddlers, and sparse far-flung globals.
    fn draw_addr(rng: &mut Rng) -> u64 {
        match rng.below(8) {
            // Dense stack frame: one hot page plus neighbors.
            0..=2 => 0x7fff_f000 + rng.below(192),
            // Strided heap array: 8-byte stride across many pages.
            3..=4 => 0x1000_0000 + 8 * rng.below(4096),
            // Page-boundary straddle: addresses right around a multiple
            // of the 64-slot page, exercising slot 63 -> slot 0 handoff.
            5 => 0x2000_0000 + 64 * rng.below(16) + 62 + rng.below(4),
            // Sparse globals anywhere in the address space.
            6 => rng.next(),
            // Reuse of a tiny working set, forcing overwrites.
            _ => rng.below(16),
        }
    }

    /// Dumps a table in sorted-address order.
    fn dump<M: MemTable>(table: &M) -> Vec<(u64, ValueRecord)> {
        let mut out = Vec::new();
        table.for_each_sorted(|addr, rec| out.push((addr, *rec)));
        out
    }

    /// Reference model: plain `std` HashMap plus the spec's eviction rule
    /// (sort everything, drop the `excess` smallest `(deepest_use, addr)`).
    #[derive(Default)]
    struct Model {
        map: HashMap<u64, ValueRecord>,
    }

    impl Model {
        fn evict_coldest(&mut self, excess: usize) -> Vec<ValueRecord> {
            let mut all: Vec<(i64, u64)> =
                self.map.iter().map(|(&a, r)| (r.deepest_use, a)).collect();
            all.sort_unstable();
            all.truncate(excess);
            all.iter()
                .filter_map(|&(_, addr)| self.map.remove(&addr))
                .collect()
        }

        fn dump(&self) -> Vec<(u64, ValueRecord)> {
            let mut out: Vec<(u64, ValueRecord)> = self.map.iter().map(|(&a, &r)| (a, r)).collect();
            out.sort_unstable_by_key(|&(a, _)| a);
            out
        }
    }

    /// Property: under randomized op streams over realistic address
    /// patterns, `PagedWell` and `FlatWell` stay observation-equivalent to
    /// the HashMap reference model — same contents, same eviction sets.
    #[test]
    fn paged_well_matches_reference_model_under_random_ops() {
        for seed in 0..12u64 {
            let mut rng = Rng(0xc0ffee ^ (seed << 17));
            let mut paged = PagedWell::default();
            let mut flat = FlatWell::default();
            let mut model = Model::default();
            for step in 0..4000u64 {
                let addr = draw_addr(&mut rng);
                match rng.below(10) {
                    // Read-side: get-or-insert-preexisting, then deepen.
                    0..=4 => {
                        let level = step as i64 % 997;
                        for entry in [
                            paged.get_or_insert_preexisting(addr),
                            flat.get_or_insert_preexisting(addr),
                            model
                                .map
                                .entry(addr)
                                .or_insert_with(ValueRecord::preexisting),
                        ] {
                            entry.deepest_use = entry.deepest_use.max(level);
                            entry.readers = entry.readers.saturating_add(1);
                        }
                    }
                    // Write-side: insert a fresh record.
                    5..=7 => {
                        let level = step as i64 % 1013;
                        let rec = record(level, level, 0);
                        let a = paged.insert(addr, rec);
                        let b = flat.insert(addr, rec);
                        let c = model.map.insert(addr, rec);
                        assert_eq!(a, c, "paged insert displaced wrong record");
                        assert_eq!(b, c, "flat insert displaced wrong record");
                    }
                    // Point lookups agree.
                    8 => {
                        assert_eq!(paged.get(addr), model.map.get(&addr));
                        assert_eq!(flat.get(addr), model.map.get(&addr));
                    }
                    // Eviction: the sets must match exactly.
                    _ => {
                        let excess = rng.below(48) as usize;
                        let mut from_paged = Vec::new();
                        let mut from_flat = Vec::new();
                        paged.evict_coldest(excess, |r| from_paged.push(r));
                        flat.evict_coldest(excess, |r| from_flat.push(r));
                        let mut expect = model.evict_coldest(excess);
                        // Retirement order is unspecified (the consumers are
                        // histograms); compare as multisets.
                        let key = |r: &ValueRecord| (r.deepest_use, r.avail, r.readers);
                        from_paged.sort_unstable_by_key(key);
                        from_flat.sort_unstable_by_key(key);
                        expect.sort_unstable_by_key(key);
                        assert_eq!(from_paged, expect, "paged eviction set diverged");
                        assert_eq!(from_flat, expect, "flat eviction set diverged");
                    }
                }
                assert_eq!(paged.len(), model.map.len());
                assert_eq!(flat.len(), model.map.len());
            }
            assert_eq!(dump(&paged), model.dump(), "seed {seed}: paged contents");
            assert_eq!(dump(&flat), model.dump(), "seed {seed}: flat contents");
        }
    }

    #[test]
    fn sorted_iteration_crosses_page_boundaries_in_order() {
        let mut paged = PagedWell::default();
        // Straddle three pages, inserted out of order.
        for addr in [191u64, 64, 127, 128, 63, 0, 65] {
            paged.insert(addr, record(0, addr as i64, 0));
        }
        let addrs: Vec<u64> = dump(&paged).iter().map(|&(a, _)| a).collect();
        assert_eq!(addrs, vec![0, 63, 64, 65, 127, 128, 191]);
    }

    #[test]
    fn eviction_prefers_cold_entries_and_respects_address_tiebreak() {
        let mut paged = PagedWell::default();
        // Two entries tied at deepest_use = 5 on different pages: the
        // smaller address must lose the tie-break, even though its page's
        // summary is scanned later (page 100 ranks after page 0's bound).
        paged.insert(3, record(0, 5, 0)); // page 0
        paged.insert(100 * 64 + 1, record(0, 5, 0)); // page 100
        paged.insert(7, record(0, 1, 0)); // page 0, coldest
        let mut evicted_addrs = Vec::new();
        paged.evict_coldest(2, |r| evicted_addrs.push(r.deepest_use));
        // Coldest (deepest_use 1), then the tie at 5 won by address 3.
        assert_eq!(paged.len(), 1);
        assert_eq!(paged.get(100 * 64 + 1).map(|r| r.deepest_use), Some(5));
        assert_eq!(paged.get(3), None);
        assert_eq!(paged.get(7), None);
    }

    #[test]
    fn stale_low_summaries_never_break_eviction_exactness() {
        let mut paged = PagedWell::default();
        // Make page 0's summary stale-low: insert a cold record, then
        // deepen it through the read-side path without touching the bound.
        paged.insert(1, record(0, 0, 0));
        let entry = paged.get_or_insert_preexisting(1);
        entry.deepest_use = 100; // page 0's min_bound still says 0
        paged.insert(64 + 1, record(0, 50, 0)); // page 1, truly coldest
        let mut evicted = Vec::new();
        paged.evict_coldest(1, |r| evicted.push(r.deepest_use));
        assert_eq!(evicted, vec![50], "must evict the true coldest entry");
        // The scan refreshed page 0's summary to the true minimum.
        assert_eq!(paged.get(1).map(|r| r.deepest_use), Some(100));
    }

    #[test]
    fn empty_pages_are_recycled_through_the_free_list() {
        let mut paged = PagedWell::default();
        for addr in 0..64u64 {
            paged.insert(addr, record(0, 0, 0));
        }
        assert_eq!(paged.pages.len(), 1);
        paged.evict_coldest(64, |_| {});
        assert_eq!(paged.len(), 0);
        assert_eq!(paged.free.len(), 1, "emptied page must be freed");
        // A page elsewhere reuses the freed slot instead of growing the pool.
        paged.insert(1 << 40, record(0, 0, 0));
        assert_eq!(paged.pages.len(), 1);
        assert!(paged.free.is_empty());
        assert_eq!(paged.get(1 << 40).map(|r| r.avail), Some(0));
    }

    #[test]
    fn hot_page_cache_is_invalidated_when_its_page_is_freed() {
        let mut paged = PagedWell::default();
        paged.insert(10, record(0, 0, 0));
        assert!(paged.get(10).is_some()); // cache now points at page 0
        assert_eq!(paged.remove(10).map(|r| r.avail), Some(0));
        // A lookup through a stale cache entry would index a freed page.
        assert_eq!(paged.get(10), None);
        assert_eq!(paged.remove(11), None);
        paged.insert(1 << 30, record(0, 3, 0)); // reuses the freed page slot
        assert_eq!(paged.get(10), None, "old page's addresses must miss");
    }

    #[test]
    fn highest_addresses_do_not_collide_with_the_cache_sentinel() {
        let mut paged = PagedWell::default();
        let top = u64::MAX; // page number u64::MAX >> 6, slot 63
        paged.insert(top, record(0, 9, 0));
        assert_eq!(paged.get(top).map(|r| r.deepest_use), Some(9));
        assert_eq!(paged.len(), 1);
        let mut seen = Vec::new();
        paged.for_each_sorted(|a, _| seen.push(a));
        assert_eq!(seen, vec![top]);
    }

    #[test]
    fn evicting_more_than_resident_clears_the_table() {
        for excess in [5usize, 64, 1000] {
            let mut paged = PagedWell::default();
            for addr in 0..5u64 {
                paged.insert(1000 * addr, record(0, addr as i64, 0));
            }
            let evicted = paged.evict_coldest(excess, |_| {});
            assert_eq!(evicted, 5);
            assert_eq!(paged.len(), 0);
            assert!(paged.is_empty());
        }
    }
}

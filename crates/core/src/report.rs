//! Results of one trace analysis.

use crate::branch::Predictor;
use crate::config::AnalysisConfig;
use crate::dist::Distribution;
use crate::profile::ParallelismProfile;
use paragraph_isa::OpClass;
use std::fmt;

/// The metrics produced by one pass of the analyzer over a trace.
///
/// "Every trace analysis produces two metrics: the parallelism profile, and
/// the critical path length" — plus the bookkeeping needed to report them the
/// way the paper's tables do (placed operation counts, system call counts,
/// available parallelism).
///
/// # Examples
///
/// ```
/// use paragraph_core::{analyze, AnalysisConfig};
/// use paragraph_trace::synthetic;
///
/// let report = analyze(synthetic::chain(10), &AnalysisConfig::dataflow_limit());
/// assert_eq!(report.critical_path_length(), 10);
/// assert_eq!(report.available_parallelism(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    config: AnalysisConfig,
    profile: ParallelismProfile,
    total_records: u64,
    placed_ops: u64,
    syscalls: u64,
    firewalls: u64,
    branch_firewalls: u64,
    evictions: u64,
    peak_live_values: usize,
    predictor: Option<Predictor>,
    value_stats: Option<(Distribution, Distribution)>,
    class_placed: [u64; OpClass::ALL.len()],
}

impl AnalysisReport {
    #[allow(clippy::too_many_arguments)] // crate-private constructor fed by LiveWell::finish
    pub(crate) fn new(
        config: AnalysisConfig,
        profile: ParallelismProfile,
        total_records: u64,
        placed_ops: u64,
        syscalls: u64,
        firewalls: u64,
        branch_firewalls: u64,
        evictions: u64,
        peak_live_values: usize,
        predictor: Option<Predictor>,
        value_stats: Option<(Distribution, Distribution)>,
        class_placed: [u64; OpClass::ALL.len()],
    ) -> AnalysisReport {
        debug_assert_eq!(profile.total_ops(), placed_ops);
        AnalysisReport {
            config,
            profile,
            total_records,
            placed_ops,
            syscalls,
            firewalls,
            branch_firewalls,
            evictions,
            peak_live_values,
            predictor,
            value_stats,
            class_placed,
        }
    }

    /// The configuration this analysis ran under.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The parallelism profile (operations per DDG level).
    pub fn profile(&self) -> &ParallelismProfile {
        &self.profile
    }

    /// The critical path length: the height of the topologically sorted DDG,
    /// i.e. the minimum number of abstract machine steps required to execute
    /// the traced computation under the configured constraints.
    pub fn critical_path_length(&self) -> u64 {
        self.profile.levels()
    }

    /// Total dynamic instructions observed, including control instructions
    /// that are never placed in the DDG.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Operations placed in the DDG (value-creating instructions).
    pub fn placed_ops(&self) -> u64 {
        self.placed_ops
    }

    /// Operations of one class placed in the DDG.
    pub fn placed_of_class(&self, class: OpClass) -> u64 {
        self.class_placed[class as usize]
    }

    /// System calls observed in the trace (Table 3's "Number of System
    /// Calls"), counted under both syscall policies.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Firewalls inserted (conservative system calls).
    pub fn firewalls(&self) -> u64 {
        self.firewalls
    }

    /// Firewalls inserted by mispredicted branches (zero under the perfect
    /// branch policy).
    pub fn branch_firewalls(&self) -> u64 {
        self.branch_firewalls
    }

    /// Memory locations evicted from the live well under
    /// [`AnalysisConfig::live_well_cap`]. When non-zero, the reported
    /// parallelism is an upper bound: an evicted location read again looks
    /// preexisting, so some true dependences were dropped.
    pub fn live_well_evictions(&self) -> u64 {
        self.evictions
    }

    /// Peak number of live-well entries during the pass — the analyzer's
    /// working set (the paper needed "a very large memory (32 MBytes)" for
    /// its runs).
    pub fn peak_live_values(&self) -> usize {
        self.peak_live_values
    }

    /// The branch predictor's final state, when the branch policy used one:
    /// prediction counts and accuracy.
    pub fn predictor(&self) -> Option<&Predictor> {
        self.predictor.as_ref()
    }

    /// Distribution of value lifetimes (levels from creation to last use),
    /// when the configuration enabled value statistics. §2.3: "useful in
    /// determining the amount of temporary storage required to exploit the
    /// parallelism in the DDG."
    pub fn value_lifetimes(&self) -> Option<&Distribution> {
        self.value_stats.as_ref().map(|(l, _)| l)
    }

    /// Distribution of the degree of sharing (consumers per created value),
    /// when the configuration enabled value statistics.
    pub fn sharing_degrees(&self) -> Option<&Distribution> {
        self.value_stats.as_ref().map(|(_, s)| s)
    }

    /// The available parallelism: placed operations divided by the critical
    /// path length. This is the speedup attainable by an abstract machine
    /// that extracts and executes the DDG directly.
    ///
    /// Returns 0 for an empty trace.
    pub fn available_parallelism(&self) -> f64 {
        self.profile.mean_ops_per_level()
    }
}

impl AnalysisReport {
    /// Serializes the report as a small, self-describing JSON object —
    /// convenient for scripting over CLI runs without pulling a JSON
    /// dependency into downstream tooling.
    ///
    /// The profile is included in binned form (`first_level`,
    /// `avg_ops_per_level` pairs); value statistics appear when they were
    /// collected.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"config\":\"{}\",",
            esc(&self.config.to_string())
        ));
        out.push_str(&format!("\"total_records\":{},", self.total_records));
        out.push_str(&format!("\"placed_ops\":{},", self.placed_ops));
        out.push_str(&format!("\"syscalls\":{},", self.syscalls));
        out.push_str(&format!("\"firewalls\":{},", self.firewalls));
        out.push_str(&format!("\"branch_firewalls\":{},", self.branch_firewalls));
        out.push_str(&format!("\"live_well_evictions\":{},", self.evictions));
        match self.config.live_well_cap() {
            Some(cap) => out.push_str(&format!("\"live_well_cap\":{cap},")),
            None => out.push_str("\"live_well_cap\":null,"),
        }
        // Evictions drop true dependences, so the parallelism figures become
        // an upper bound; downstream tooling can branch on this flag instead
        // of re-deriving the caveat from the eviction count.
        out.push_str(&format!(
            "\"parallelism_is_upper_bound\":{},",
            self.evictions > 0
        ));
        out.push_str(&format!("\"peak_live_values\":{},", self.peak_live_values));
        if let Some(p) = &self.predictor {
            out.push_str(&format!(
                "\"branch_predictions\":{},\"branch_mispredictions\":{},",
                p.predictions(),
                p.mispredictions()
            ));
        }
        out.push_str(&format!(
            "\"critical_path_length\":{},",
            self.critical_path_length()
        ));
        out.push_str(&format!(
            "\"available_parallelism\":{:.6},",
            self.available_parallelism()
        ));
        if let Some((lifetimes, sharing)) = &self.value_stats {
            out.push_str(&format!(
                "\"value_lifetime_mean\":{:.6},\"sharing_mean\":{:.6},",
                lifetimes.mean(),
                sharing.mean()
            ));
        }
        out.push_str("\"profile\":[");
        let mut first = true;
        for bin in self.profile.bins() {
            if !first {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},{:.4}]",
                bin.first_level, bin.avg_ops_per_level
            ));
            first = false;
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "analysis: {}", self.config)?;
        writeln!(f, "  instructions analyzed : {:>14}", self.total_records)?;
        writeln!(f, "  operations placed     : {:>14}", self.placed_ops)?;
        writeln!(f, "  system calls          : {:>14}", self.syscalls)?;
        writeln!(f, "  firewalls             : {:>14}", self.firewalls)?;
        if let Some(p) = &self.predictor {
            writeln!(
                f,
                "  branch accuracy       : {:>13.2}% ({} mispredict firewalls)",
                100.0 * p.accuracy(),
                self.branch_firewalls
            )?;
        }
        writeln!(
            f,
            "  critical path length  : {:>14}",
            self.critical_path_length()
        )?;
        writeln!(
            f,
            "  available parallelism : {:>14.2}",
            self.available_parallelism()
        )?;
        if self.evictions > 0 {
            writeln!(
                f,
                "  CAVEAT: {} live-well evictions under the memory cap; \
                 parallelism is an upper bound",
                self.evictions
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use paragraph_trace::synthetic;

    #[test]
    fn display_contains_headline_metrics() {
        let report = analyze(synthetic::figure1(), &AnalysisConfig::dataflow_limit());
        let text = report.to_string();
        assert!(text.contains("critical path length"));
        assert!(text.contains("available parallelism"));
        assert!(text.contains('8'));
    }

    #[test]
    fn class_counts_sum_to_placed() {
        let report = analyze(
            synthetic::random_trace(1000, 3),
            &AnalysisConfig::dataflow_limit(),
        );
        let by_class: u64 = OpClass::ALL
            .iter()
            .map(|&c| report.placed_of_class(c))
            .sum();
        assert_eq!(by_class, report.placed_ops());
    }

    #[test]
    fn json_export_is_well_formed() {
        let report = analyze(synthetic::figure1(), &AnalysisConfig::dataflow_limit());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"placed_ops\":8"));
        assert!(json.contains("\"critical_path_length\":"));
        assert!(json.contains("\"profile\":[[0,"));
        // Balanced braces/brackets (a cheap well-formedness check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_exposes_live_well_accuracy_fields() {
        let exact = analyze(synthetic::figure1(), &AnalysisConfig::dataflow_limit());
        let json = exact.to_json();
        assert!(json.contains("\"live_well_evictions\":0"));
        assert!(json.contains("\"live_well_cap\":null"));
        assert!(json.contains("\"parallelism_is_upper_bound\":false"));

        // A cap of 1 on a trace with more than one live location forces
        // evictions, which must flip the upper-bound flag.
        let capped_config = AnalysisConfig::dataflow_limit().with_live_well_cap(1);
        let capped = analyze(synthetic::random_trace(1000, 3), &capped_config);
        assert!(capped.live_well_evictions() > 0);
        let json = capped.to_json();
        assert!(json.contains("\"live_well_cap\":1"));
        assert!(json.contains("\"parallelism_is_upper_bound\":true"));
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let report = analyze(Vec::new(), &AnalysisConfig::dataflow_limit());
        assert_eq!(report.critical_path_length(), 0);
        assert_eq!(report.available_parallelism(), 0.0);
        assert_eq!(report.placed_ops(), 0);
    }
}

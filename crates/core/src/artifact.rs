//! Crash-consistent artifact writes: every durable output (checkpoints,
//! reports, CSVs, stage rows) goes to disk atomically or not at all.
//!
//! The pattern is the classic one: write the full payload to a temp file in
//! the destination directory, `sync_all` it, rename it over the final path,
//! then fsync the parent directory so the rename itself is durable. A crash
//! at any point leaves either the old artifact or the new one — never a
//! truncated hybrid.
//!
//! Temp names are unique per process *and* per call
//! (`.{name}.{pid}.{seq}.tmp`), so two concurrent sweeps writing the same
//! artifact path cannot corrupt each other's in-flight temp file — the loser
//! of the rename race merely overwrites the winner with identical bytes.
//! Temp files orphaned by a crash are swept by [`clean_orphaned_tmp`] at
//! startup.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process sequence number distinguishing concurrent temp files.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Suffix shared by every in-flight temp file; [`clean_orphaned_tmp`] keys
/// on it.
const TMP_SUFFIX: &str = ".tmp";

/// The unique temp path for an atomic write targeting `path`.
fn tmp_path_for(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(".{name}.{}.{seq}{TMP_SUFFIX}", std::process::id());
    path.with_file_name(tmp_name)
}

/// Fsyncs `dir` so a just-completed rename inside it survives a crash.
/// Directory fsync is a Unix notion; elsewhere this is a no-op.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Writes an artifact atomically: `fill` streams the payload into a
/// buffered writer over a unique temp file, which is synced and renamed
/// over `path`, and the parent directory is fsynced. On any failure the
/// temp file is removed and `path` is untouched.
///
/// # Errors
///
/// Propagates the first I/O failure from temp-file creation, `fill`, sync,
/// rename, or the directory fsync.
pub fn write_atomic(
    path: &Path,
    fill: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&parent)?;
    let tmp = tmp_path_for(path);
    let result = (|| {
        let file = File::create(&tmp)?;
        let mut writer = BufWriter::new(file);
        fill(&mut writer)?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        fs::rename(&tmp, path)?;
        sync_dir(&parent)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`write_atomic`] over a fully materialized payload.
///
/// # Errors
///
/// Propagates the underlying I/O failure; `path` is untouched on error.
pub fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic(path, |w| w.write_all(bytes))
}

/// Removes temp files orphaned in `dir` by a crashed or killed writer
/// (`.{name}.{pid}.{seq}.tmp`, plus the legacy fixed `*.tmp` suffixes
/// earlier builds used). Returns how many were removed; a missing or
/// unreadable directory removes nothing. Errors deleting individual
/// entries are ignored — an orphan that survives one sweep is caught by
/// the next.
pub fn clean_orphaned_tmp(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let is_tmp = name.to_string_lossy().ends_with(TMP_SUFFIX);
        let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
        if is_tmp && is_file && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Removes temp files orphaned by crashed writers of one specific artifact
/// (`.{name}.*.tmp` siblings of `path`, plus the legacy fixed `{name}.tmp`
/// earlier builds used). Unlike [`clean_orphaned_tmp`] this is safe to run
/// in a shared directory — say, next to a user-named checkpoint in the
/// working directory — because it only matches temps derived from `path`'s
/// own file name. Returns how many were removed.
pub fn clean_orphaned_tmp_for(path: &Path) -> usize {
    let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return 0;
    };
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Ok(entries) = fs::read_dir(&dir) else {
        return 0;
    };
    let prefix = format!(".{name}.");
    let legacy = format!("{name}{TMP_SUFFIX}");
    let mut removed = 0;
    for entry in entries.flatten() {
        let entry_name = entry.file_name().to_string_lossy().into_owned();
        let matches = entry_name == legacy
            || (entry_name.starts_with(&prefix) && entry_name.ends_with(TMP_SUFFIX));
        let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
        if matches && is_file && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "paragraph-artifact-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&dir).expect("test temp dir");
        dir
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = temp_dir("basic");
        let path = dir.join("report.json");
        write_atomic_bytes(&path, b"old").expect("first write");
        write_atomic_bytes(&path, b"new").expect("second write");
        assert_eq!(fs::read(&path).expect("read back"), b"new");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("dir listing")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(TMP_SUFFIX))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fill_removes_temp_and_preserves_old_artifact() {
        let dir = temp_dir("fail");
        let path = dir.join("report.json");
        write_atomic_bytes(&path, b"intact").expect("seed write");
        let err = write_atomic(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("simulated ENOSPC"))
        });
        assert!(err.is_err());
        assert_eq!(fs::read(&path).expect("read back"), b"intact");
        assert_eq!(clean_orphaned_tmp(&dir), 0, "failed write must clean up");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_sweep_removes_only_temp_files() {
        let dir = temp_dir("orphans");
        fs::write(dir.join(".ckpt.pgcp.1234.0.tmp"), b"x").expect("orphan");
        fs::write(dir.join("stage.row.tmp"), b"x").expect("legacy orphan");
        fs::write(dir.join("keep.pgcp"), b"x").expect("real artifact");
        assert_eq!(clean_orphaned_tmp(&dir), 2);
        assert!(dir.join("keep.pgcp").exists());
        assert_eq!(clean_orphaned_tmp(&dir), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn targeted_orphan_sweep_spares_unrelated_temps() {
        let dir = temp_dir("targeted");
        let ckpt = dir.join("run.pgcp");
        fs::write(dir.join(".run.pgcp.999.7.tmp"), b"x").expect("orphan");
        fs::write(dir.join("run.pgcp.tmp"), b"x").expect("legacy orphan");
        fs::write(dir.join(".other.csv.999.0.tmp"), b"x").expect("unrelated temp");
        fs::write(&ckpt, b"x").expect("real artifact");
        assert_eq!(clean_orphaned_tmp_for(&ckpt), 2);
        assert!(ckpt.exists());
        assert!(
            dir.join(".other.csv.999.0.tmp").exists(),
            "unrelated artifacts' temps must survive a targeted sweep"
        );
        assert_eq!(clean_orphaned_tmp_for(&dir.join("missing.pgcp")), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_to_one_path_never_mix_bytes() {
        let dir = temp_dir("race");
        let path = dir.join("contended.bin");
        let payloads: Vec<Vec<u8>> = (0u8..4).map(|i| vec![i; 4096]).collect();
        std::thread::scope(|scope| {
            for payload in &payloads {
                scope.spawn(|| {
                    for _ in 0..16 {
                        write_atomic_bytes(&path, payload).expect("atomic write");
                    }
                });
            }
        });
        let last = fs::read(&path).expect("read back");
        assert!(
            payloads.iter().any(|p| *p == last),
            "artifact must be exactly one writer's payload"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

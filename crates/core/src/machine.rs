//! Named machine models: preset bundles of the analyzer's constraints.
//!
//! The paper frames its results in terms of what "the next several
//! generations of superscalar processors" could exploit. A [`Machine`]
//! bundles the knobs that describe such a processor — window size, issue
//! width, branch handling, renaming, memory disambiguation — into one
//! named configuration, so studies can compare machine generations instead
//! of raw switch combinations.
//!
//! # Examples
//!
//! ```
//! use paragraph_core::machine::Machine;
//! use paragraph_core::{analyze, AnalysisConfig};
//! use paragraph_trace::synthetic;
//!
//! let trace = synthetic::interleaved_chains(16, 50);
//! let dataflow = analyze(trace.clone(), &Machine::dataflow().configure());
//! let scalar = analyze(trace.clone(), &Machine::scalar().configure());
//! assert!(dataflow.available_parallelism() > scalar.available_parallelism());
//! ```

use crate::branch::{BranchPolicy, PredictorKind};
use crate::config::{AnalysisConfig, RenameSet, WindowSize};
use crate::memmodel::MemoryModel;
use std::fmt;

/// A named machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    name: &'static str,
    description: &'static str,
    window: WindowSize,
    issue: Option<usize>,
    renames: RenameSet,
    branches: BranchPolicy,
    memory: MemoryModel,
}

impl Machine {
    /// The abstract dataflow machine: the paper's limit condition. No
    /// window, width, branch, or aliasing constraints; everything renamed.
    pub fn dataflow() -> Machine {
        Machine {
            name: "dataflow",
            description: "abstract dataflow machine (the paper's limit)",
            window: WindowSize::Infinite,
            issue: None,
            renames: RenameSet::all(),
            branches: BranchPolicy::Perfect,
            memory: MemoryModel::Perfect,
        }
    }

    /// A scalar in-order pipeline: single issue, four-instruction window,
    /// no renaming, no disambiguation, stalls on every branch.
    pub fn scalar() -> Machine {
        Machine {
            name: "scalar",
            description: "single-issue in-order pipeline",
            window: WindowSize::bounded(4),
            issue: Some(1),
            renames: RenameSet::none(),
            branches: BranchPolicy::StallAlways,
            memory: MemoryModel::NoDisambiguation,
        }
    }

    /// An early superscalar (circa the paper): 2-wide, 32-entry window,
    /// register renaming, static BTFN prediction, no memory disambiguation.
    pub fn superscalar_2wide() -> Machine {
        Machine {
            name: "ss-2",
            description: "2-wide superscalar, 32-entry window, BTFN",
            window: WindowSize::bounded(32),
            issue: Some(2),
            renames: RenameSet::registers_only(),
            branches: BranchPolicy::Predict(PredictorKind::Btfn),
            memory: MemoryModel::NoDisambiguation,
        }
    }

    /// A 4-wide out-of-order core: 128-entry window, register renaming,
    /// bimodal prediction, perfect in-window disambiguation.
    pub fn superscalar_4wide() -> Machine {
        Machine {
            name: "ss-4",
            description: "4-wide OoO, 128-entry window, bimodal",
            window: WindowSize::bounded(128),
            issue: Some(4),
            renames: RenameSet::registers_only(),
            branches: BranchPolicy::Predict(PredictorKind::Bimodal { index_bits: 10 }),
            memory: MemoryModel::Perfect,
        }
    }

    /// An aggressive 8-wide out-of-order core: 1024-entry window, gshare.
    pub fn superscalar_8wide() -> Machine {
        Machine {
            name: "ss-8",
            description: "8-wide OoO, 1024-entry window, gshare",
            window: WindowSize::bounded(1024),
            issue: Some(8),
            renames: RenameSet::registers_only(),
            branches: BranchPolicy::Predict(PredictorKind::Gshare { index_bits: 14 }),
            memory: MemoryModel::Perfect,
        }
    }

    /// A hypothetical wide machine with memory renaming: 16-wide,
    /// 64k-entry window, gshare, registers and memory renamed — what the
    /// paper argues would be needed to reach the big numbers.
    pub fn future_wide() -> Machine {
        Machine {
            name: "future",
            description: "16-wide, 64k window, gshare, full renaming",
            window: WindowSize::bounded(65_536),
            issue: Some(16),
            renames: RenameSet::all(),
            branches: BranchPolicy::Predict(PredictorKind::Gshare { index_bits: 16 }),
            memory: MemoryModel::Perfect,
        }
    }

    /// The ladder of presets from most to least constrained.
    pub fn generations() -> Vec<Machine> {
        vec![
            Machine::scalar(),
            Machine::superscalar_2wide(),
            Machine::superscalar_4wide(),
            Machine::superscalar_8wide(),
            Machine::future_wide(),
            Machine::dataflow(),
        ]
    }

    /// The preset's short name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One line describing the modelled processor.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Builds the analysis configuration for this machine (on top of the
    /// dataflow-limit defaults; apply `with_segments` afterwards).
    pub fn configure(&self) -> AnalysisConfig {
        let mut config = AnalysisConfig::dataflow_limit()
            .with_window(self.window)
            .with_renames(self.renames)
            .with_branch_policy(self.branches)
            .with_memory_model(self.memory);
        if let Some(width) = self.issue {
            config = config.with_issue_limit(width);
        }
        config
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.description)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use paragraph_trace::synthetic;

    #[test]
    fn generations_are_ordered_by_capability() {
        // On a wide, branch-free, memory-free trace each generation should
        // expose at least as much parallelism as the one before.
        let trace = synthetic::interleaved_chains(32, 60);
        let mut last = 0.0;
        for machine in Machine::generations() {
            let report = analyze(trace.clone(), &machine.configure());
            let par = report.available_parallelism();
            assert!(
                par >= last - 1e-9,
                "{machine} regressed: {par:.2} < {last:.2}"
            );
            last = par;
        }
    }

    #[test]
    fn issue_width_caps_the_scalar_machines() {
        let trace = synthetic::independent(64);
        let scalar = analyze(trace.clone(), &Machine::scalar().configure());
        assert!(scalar.available_parallelism() <= 1.0 + 1e-9);
        let four = analyze(trace.clone(), &Machine::superscalar_4wide().configure());
        assert!(four.available_parallelism() <= 4.0 + 1e-9);
    }

    #[test]
    fn dataflow_preset_is_the_default_config() {
        assert_eq!(
            Machine::dataflow().configure(),
            AnalysisConfig::dataflow_limit()
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Machine::generations().iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Machine::generations().len());
    }
}

//! Typed analysis errors.
//!
//! The analyzer itself is total — any well-formed record stream produces a
//! report — so analysis errors come from the edges: reading a trace,
//! loading or saving a checkpoint, plain I/O. This enum unifies them so
//! drivers (the CLI, the benchmark sweeps) can propagate one error type and
//! still dispatch on the failure class for exit codes.

use crate::checkpoint::CheckpointError;
use paragraph_trace::TraceError;
use std::error::Error;
use std::fmt;
use std::io;

/// Any failure while driving an analysis end to end.
#[derive(Debug)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The input trace stream failed (corrupt, truncated, unreadable).
    Trace(TraceError),
    /// A checkpoint file failed to load or save.
    Checkpoint(CheckpointError),
    /// Plain I/O outside the trace and checkpoint formats.
    Io(io::Error),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Trace(e) => write!(f, "{e}"),
            AnalysisError::Checkpoint(e) => write!(f, "{e}"),
            AnalysisError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Trace(e) => Some(e),
            AnalysisError::Checkpoint(e) => Some(e),
            AnalysisError::Io(e) => Some(e),
        }
    }
}

impl From<TraceError> for AnalysisError {
    fn from(e: TraceError) -> AnalysisError {
        AnalysisError::Trace(e)
    }
}

impl From<CheckpointError> for AnalysisError {
    fn from(e: CheckpointError) -> AnalysisError {
        AnalysisError::Checkpoint(e)
    }
}

impl From<io::Error> for AnalysisError {
    fn from(e: io::Error) -> AnalysisError {
        AnalysisError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_delegate_to_the_inner_error() {
        let err = AnalysisError::from(io::Error::new(io::ErrorKind::Other, "disk on fire"));
        assert!(err.to_string().contains("disk on fire"));
        assert!(err.source().is_some());
    }
}

//! A small multiplicative hasher for live-well lookups.
//!
//! The live well performs several hash operations per trace instruction, so
//! the default SipHash is a measurable cost on multi-million-instruction
//! traces. This Fx-style multiplicative hash is entirely adequate for the
//! key distribution here (word addresses and small register indices) and
//! keeps the crate dependency-free.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxStyleHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxStyleHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiplicative hasher in the style of rustc's FxHash.
#[derive(Debug, Default, Clone)]
pub(crate) struct FxStyleHasher {
    hash: u64,
}

impl FxStyleHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxStyleHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_inserts_and_retrieves() {
        let mut map: FastMap<u64, u32> = FastMap::default();
        for i in 0..10_000u64 {
            map.insert(i * 8, i as u32);
        }
        for i in 0..10_000u64 {
            assert_eq!(map.get(&(i * 8)), Some(&(i as u32)));
        }
        assert_eq!(map.get(&7), None);
    }

    #[test]
    fn hasher_differentiates_nearby_word_addresses() {
        let hash = |v: u64| {
            let mut h = FxStyleHasher::default();
            h.write_u64(v);
            h.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for addr in 0..4096u64 {
            seen.insert(hash(addr));
        }
        assert_eq!(seen.len(), 4096);
    }
}

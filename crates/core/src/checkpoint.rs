//! Analyzer checkpoint files: suspend a streaming analysis and resume it
//! later, byte-for-byte equivalent to an uninterrupted run.
//!
//! The paper's runs chewed through billions of trace records ("the analysis
//! of one trace would take from one-half to tens of hours"); a crash near
//! the end of such a pass should not cost the whole pass. A checkpoint
//! captures the complete [`LiveWell`](crate::LiveWell) state — the live-well
//! table, placement floors, parallelism-profile accumulator, window,
//! predictor, and every counter — so `resume + remaining records` produces
//! exactly the report `all records` would have.
//!
//! # File format
//!
//! ```text
//! magic   "PGCP" (4 bytes)
//! version 2      (1 byte; version-1 files still load)
//! body    varint-encoded LiveWell state, beginning with a fingerprint of
//!         the analysis configuration (a checkpoint resumes only under the
//!         configuration that produced it) and — new in version 2 — an
//!         optional trace identity fingerprint (see [`TraceIdentity`]) so a
//!         resume against the *wrong trace* is rejected, not silently
//!         computed
//! crc32   over the body (4 bytes, LE)
//! ```
//!
//! Varints, zig-zag, and CRC32 are shared with the trace format
//! ([`paragraph_trace::wire`], [`paragraph_trace::crc32`]). All maps are
//! serialized in sorted key order, so identical analyzer states produce
//! identical checkpoint bytes.

use crate::config::AnalysisConfig;
use paragraph_trace::crc32::Crc32;
use paragraph_trace::{Loc, TraceRecord};
use std::error::Error;
use std::fmt;
use std::io;

/// Magic bytes opening a checkpoint file.
pub const MAGIC: &[u8; 4] = b"PGCP";
/// Current checkpoint format version.
pub const VERSION: u8 = 2;
/// Oldest checkpoint format version this build still loads.
pub const MIN_VERSION: u8 = 1;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The file does not start with the `PGCP` magic.
    BadMagic,
    /// The file declares a format version this build does not know.
    UnsupportedVersion(u8),
    /// The file ended before the state did.
    Truncated,
    /// The body failed its CRC32 check.
    ChecksumMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The checkpoint was produced under a different analysis
    /// configuration; resuming it would silently change the result.
    ConfigMismatch {
        /// Fingerprint stored in the checkpoint.
        saved: u64,
        /// Fingerprint of the configuration offered for resumption.
        current: u64,
    },
    /// The checkpoint was produced over a different trace; resuming it
    /// would silently produce a wrong critical path.
    TraceMismatch {
        /// Identity stored in the checkpoint.
        saved: TraceIdentity,
        /// Identity of the trace offered for resumption.
        current: TraceIdentity,
    },
    /// The bytes decoded but describe an impossible analyzer state.
    Corrupt(&'static str),
    /// The checkpoint tripped a resource-governor limit (e.g. it declares
    /// a live well larger than the per-allocation cap). Rejected before
    /// any allocation is made on the input's behalf.
    LimitExceeded(paragraph_trace::govern::LimitViolation),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::BadMagic => f.write_str("not a Paragraph checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => f.write_str("checkpoint truncated"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CheckpointError::ConfigMismatch { saved, current } => write!(
                f,
                "checkpoint was written under a different analysis configuration \
                 (saved fingerprint {saved:#018x}, current {current:#018x})"
            ),
            CheckpointError::TraceMismatch { saved, current } => write!(
                f,
                "checkpoint was written over a different trace \
                 (saved identity {saved}, current {current})"
            ),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::LimitExceeded(v) => write!(f, "checkpoint rejected: {v}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated
        } else {
            CheckpointError::Io(e)
        }
    }
}

/// Number of leading records hashed into a [`TraceIdentity`]. Matches the
/// trace format's default chunk size: identifying a trace costs at most one
/// chunk's worth of hashing, once, outside the analysis hot loop.
pub const IDENTITY_PREFIX_RECORDS: usize = 4096;

/// A cheap fingerprint of the trace a checkpoint was taken over: the CRC32
/// of a canonical encoding of the first [`IDENTITY_PREFIX_RECORDS`] records
/// plus the total record count at save time. Version-2 checkpoints embed it
/// so `--resume` against the wrong trace fails with
/// [`CheckpointError::TraceMismatch`] instead of silently producing a wrong
/// critical path. Version-1 checkpoints carry no identity and resume
/// unverified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceIdentity {
    /// CRC32 over the canonical encoding of the leading records.
    pub prefix_crc: u32,
    /// Total records in the trace when the identity was taken.
    pub records: u64,
}

impl fmt::Display for TraceIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{prefix_crc: {:#010x}, records: {}}}",
            self.prefix_crc, self.records
        )
    }
}

impl TraceIdentity {
    /// Fingerprints a fully materialized trace: hashes the canonical
    /// encoding of the first [`IDENTITY_PREFIX_RECORDS`] records and pairs
    /// it with the total count. Deterministic across runs and platforms —
    /// no pointers, no map iteration order, no wall clock.
    pub fn of_records(records: &[TraceRecord]) -> TraceIdentity {
        let prefix = &records[..records.len().min(IDENTITY_PREFIX_RECORDS)];
        let mut crc = Crc32::new();
        let mut buf = Vec::with_capacity(64);
        for record in prefix {
            buf.clear();
            encode_record_canonical(record, &mut buf);
            crc.update(&buf);
        }
        TraceIdentity {
            prefix_crc: crc.finish(),
            records: records.len() as u64,
        }
    }
}

/// Appends a canonical, unambiguous byte encoding of one record. This is an
/// identity encoding, not the wire format: it never changes with wire-format
/// optimizations, so identities stay stable across trace-format versions.
fn encode_record_canonical(record: &TraceRecord, out: &mut Vec<u8>) {
    push_varint(out, record.pc());
    out.push(record.class() as u8);
    let srcs = record.srcs();
    out.push(srcs.len() as u8);
    for loc in srcs {
        push_loc(out, *loc);
    }
    match record.dest() {
        Some(loc) => {
            out.push(1);
            push_loc(out, loc);
        }
        None => out.push(0),
    }
    match record.branch_info() {
        Some(info) => {
            out.push(if info.taken { 2 } else { 1 });
            push_varint(out, info.target);
        }
        None => out.push(0),
    }
}

/// Appends a location as a tag byte plus its payload.
fn push_loc(out: &mut Vec<u8>, loc: Loc) {
    match loc {
        Loc::IntReg(r) => {
            out.push(0);
            out.push(r.index());
        }
        Loc::FpReg(r) => {
            out.push(1);
            out.push(r.index());
        }
        Loc::Mem(addr) => {
            out.push(2);
            push_varint(out, addr);
        }
    }
}

/// Appends a LEB128 varint (infallible, in-memory — unlike the wire
/// helpers, which thread `io::Result` through a writer).
fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// A stable fingerprint of an analysis configuration (FNV-1a over its
/// debug representation). Checkpoints embed it so a resume under a
/// different configuration is rejected instead of silently producing a
/// mixed-configuration report.
pub fn config_fingerprint(config: &AnalysisConfig) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in format!("{config:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WindowSize;

    #[test]
    fn fingerprint_distinguishes_configurations() {
        let base = AnalysisConfig::dataflow_limit();
        let windowed = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(64));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base.clone()));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&windowed));
    }

    #[test]
    fn trace_identity_is_deterministic_and_distinguishes_traces() {
        use paragraph_trace::synthetic;
        let a = synthetic::random_trace(200, 1);
        let b = synthetic::random_trace(200, 2);
        assert_eq!(TraceIdentity::of_records(&a), TraceIdentity::of_records(&a));
        assert_ne!(
            TraceIdentity::of_records(&a).prefix_crc,
            TraceIdentity::of_records(&b).prefix_crc
        );
    }

    #[test]
    fn trace_identity_sees_length_changes_past_the_hashed_prefix() {
        use paragraph_trace::synthetic;
        // Two traces sharing their first IDENTITY_PREFIX_RECORDS records
        // but of different length: the prefix CRC agrees, the count does
        // not, so the identities differ.
        let long = synthetic::random_trace(IDENTITY_PREFIX_RECORDS + 100, 5);
        let short = &long[..IDENTITY_PREFIX_RECORDS + 1];
        let a = TraceIdentity::of_records(&long);
        let b = TraceIdentity::of_records(short);
        assert_eq!(a.prefix_crc, b.prefix_crc);
        assert_ne!(a, b);
    }

    #[test]
    fn error_display_names_the_failure() {
        let text = CheckpointError::ConfigMismatch {
            saved: 1,
            current: 2,
        }
        .to_string();
        assert!(text.contains("different analysis configuration"));
        assert!(
            CheckpointError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"))
                .to_string()
                .contains("truncated")
        );
    }
}

//! Analyzer checkpoint files: suspend a streaming analysis and resume it
//! later, byte-for-byte equivalent to an uninterrupted run.
//!
//! The paper's runs chewed through billions of trace records ("the analysis
//! of one trace would take from one-half to tens of hours"); a crash near
//! the end of such a pass should not cost the whole pass. A checkpoint
//! captures the complete [`LiveWell`](crate::LiveWell) state — the live-well
//! table, placement floors, parallelism-profile accumulator, window,
//! predictor, and every counter — so `resume + remaining records` produces
//! exactly the report `all records` would have.
//!
//! # File format
//!
//! ```text
//! magic   "PGCP" (4 bytes)
//! version 1      (1 byte)
//! body    varint-encoded LiveWell state, beginning with a fingerprint of
//!         the analysis configuration (a checkpoint resumes only under the
//!         configuration that produced it)
//! crc32   over the body (4 bytes, LE)
//! ```
//!
//! Varints, zig-zag, and CRC32 are shared with the trace format
//! ([`paragraph_trace::wire`], [`paragraph_trace::crc32`]). All maps are
//! serialized in sorted key order, so identical analyzer states produce
//! identical checkpoint bytes.

use crate::config::AnalysisConfig;
use std::error::Error;
use std::fmt;
use std::io;

/// Magic bytes opening a checkpoint file.
pub const MAGIC: &[u8; 4] = b"PGCP";
/// Current checkpoint format version.
pub const VERSION: u8 = 1;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The file does not start with the `PGCP` magic.
    BadMagic,
    /// The file declares a format version this build does not know.
    UnsupportedVersion(u8),
    /// The file ended before the state did.
    Truncated,
    /// The body failed its CRC32 check.
    ChecksumMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The checkpoint was produced under a different analysis
    /// configuration; resuming it would silently change the result.
    ConfigMismatch {
        /// Fingerprint stored in the checkpoint.
        saved: u64,
        /// Fingerprint of the configuration offered for resumption.
        current: u64,
    },
    /// The bytes decoded but describe an impossible analyzer state.
    Corrupt(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::BadMagic => f.write_str("not a Paragraph checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => f.write_str("checkpoint truncated"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CheckpointError::ConfigMismatch { saved, current } => write!(
                f,
                "checkpoint was written under a different analysis configuration \
                 (saved fingerprint {saved:#018x}, current {current:#018x})"
            ),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated
        } else {
            CheckpointError::Io(e)
        }
    }
}

/// A stable fingerprint of an analysis configuration (FNV-1a over its
/// debug representation). Checkpoints embed it so a resume under a
/// different configuration is rejected instead of silently producing a
/// mixed-configuration report.
pub fn config_fingerprint(config: &AnalysisConfig) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in format!("{config:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WindowSize;

    #[test]
    fn fingerprint_distinguishes_configurations() {
        let base = AnalysisConfig::dataflow_limit();
        let windowed = AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(64));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base.clone()));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&windowed));
    }

    #[test]
    fn error_display_names_the_failure() {
        let text = CheckpointError::ConfigMismatch {
            saved: 1,
            current: 2,
        }
        .to_string();
        assert!(text.contains("different analysis configuration"));
        assert!(
            CheckpointError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"))
                .to_string()
                .contains("truncated")
        );
    }
}

//! Property tests: every machine instruction's `Display` form must be
//! accepted by the assembler and decode to the identical instruction, for
//! arbitrary operands.

use paragraph_asm::assemble;
use paragraph_isa::{FpReg, Inst, IntReg};
use proptest::prelude::*;

fn int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(|i| IntReg::new(i).unwrap())
}

fn fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..32).prop_map(|i| FpReg::new(i).unwrap())
}

fn imm() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(0i64),
        Just(i64::MAX),
        Just(i64::MIN + 1), // MIN itself cannot be written as -(magnitude)
        -1_000_000i64..1_000_000,
    ]
}

/// Any instruction, with targets small enough to stay inside a padded
/// program.
fn arb_inst() -> impl Strategy<Value = Inst> {
    let target = 0u32..8;
    prop_oneof![
        (int_reg(), int_reg(), int_reg()).prop_map(|(rd, rs, rt)| Inst::Add { rd, rs, rt }),
        (int_reg(), int_reg(), int_reg()).prop_map(|(rd, rs, rt)| Inst::Sub { rd, rs, rt }),
        (int_reg(), int_reg(), int_reg()).prop_map(|(rd, rs, rt)| Inst::Nor { rd, rs, rt }),
        (int_reg(), int_reg(), int_reg()).prop_map(|(rd, rs, rt)| Inst::Sltu { rd, rs, rt }),
        (int_reg(), int_reg(), int_reg()).prop_map(|(rd, rs, rt)| Inst::Mul { rd, rs, rt }),
        (int_reg(), int_reg(), int_reg()).prop_map(|(rd, rs, rt)| Inst::Rem { rd, rs, rt }),
        (int_reg(), int_reg(), 0u8..64).prop_map(|(rd, rs, shamt)| Inst::Sll { rd, rs, shamt }),
        (int_reg(), int_reg(), 0u8..64).prop_map(|(rd, rs, shamt)| Inst::Sra { rd, rs, shamt }),
        (int_reg(), int_reg(), imm()).prop_map(|(rt, rs, imm)| Inst::Addi { rt, rs, imm }),
        (int_reg(), int_reg(), imm()).prop_map(|(rt, rs, imm)| Inst::Xori { rt, rs, imm }),
        (int_reg(), imm()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (int_reg(), int_reg(), imm()).prop_map(|(rt, base, offset)| Inst::Lw { rt, base, offset }),
        (int_reg(), int_reg(), imm()).prop_map(|(rt, base, offset)| Inst::Sw { rt, base, offset }),
        (fp_reg(), int_reg(), imm()).prop_map(|(ft, base, offset)| Inst::Flw { ft, base, offset }),
        (fp_reg(), int_reg(), imm()).prop_map(|(ft, base, offset)| Inst::Fsw { ft, base, offset }),
        (fp_reg(), fp_reg(), fp_reg()).prop_map(|(fd, fs, ft)| Inst::Fadd { fd, fs, ft }),
        (fp_reg(), fp_reg(), fp_reg()).prop_map(|(fd, fs, ft)| Inst::Fdiv { fd, fs, ft }),
        (fp_reg(), fp_reg()).prop_map(|(fd, fs)| Inst::Fsqrt { fd, fs }),
        (fp_reg(), fp_reg()).prop_map(|(fd, fs)| Inst::Fmov { fd, fs }),
        (int_reg(), fp_reg(), fp_reg()).prop_map(|(rd, fs, ft)| Inst::Fclt { rd, fs, ft }),
        (fp_reg(), int_reg()).prop_map(|(fd, rs)| Inst::Cvtif { fd, rs }),
        (int_reg(), fp_reg()).prop_map(|(rd, fs)| Inst::Cvtfi { rd, fs }),
        (int_reg(), int_reg(), target.clone()).prop_map(|(rs, rt, target)| Inst::Beq {
            rs,
            rt,
            target
        }),
        (int_reg(), int_reg(), target.clone()).prop_map(|(rs, rt, target)| Inst::Bge {
            rs,
            rt,
            target
        }),
        target.clone().prop_map(|target| Inst::J { target }),
        target.prop_map(|target| Inst::Jal { target }),
        int_reg().prop_map(|rs| Inst::Jr { rs }),
        Just(Inst::Syscall),
        Just(Inst::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display -> assemble is the identity on instructions.
    #[test]
    fn display_assembles_to_the_same_instruction(inst in arb_inst()) {
        // Pad so small branch targets stay in range, then halt.
        let source = format!(
            ".text\n    {inst}\n    nop\n    nop\n    nop\n    nop\n    nop\n    nop\n    nop\n    halt\n"
        );
        let program = assemble(&source).unwrap_or_else(|e| {
            panic!("`{inst}` failed to assemble: {e}")
        });
        prop_assert_eq!(program.text()[0], inst);
    }

    /// Whole programs survive a disassemble/assemble round trip.
    #[test]
    fn programs_round_trip(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        let mut source = String::from(".text\n");
        for inst in &insts {
            source.push_str(&format!("    {inst}\n"));
        }
        // Padding keeps every generated target (0..8) inside the program.
        for _ in 0..8 {
            source.push_str("    nop\n");
        }
        source.push_str("    halt\n");
        let first = assemble(&source).unwrap();
        let second = assemble(&first.disassemble()).unwrap();
        prop_assert_eq!(first.text(), second.text());
    }
}

//! The two-pass assembler proper.

use crate::error::{AsmError, AsmErrorKind};
use crate::limits::AsmLimits;
use crate::program::Program;
use paragraph_isa::{FpReg, Inst, IntReg};
use std::collections::BTreeMap;

#[derive(Debug)]
struct PendingInst {
    line: usize,
    mnemonic: String,
    operands: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SegmentState {
    Text,
    Data,
}

/// Raises [`AsmErrorKind::LimitExceeded`] at `line_no` when `actual > cap`.
fn check_limit(
    line_no: usize,
    limit: &'static str,
    what: &'static str,
    actual: u64,
    cap: u64,
) -> Result<(), AsmError> {
    if actual > cap {
        return Err(AsmError::new(
            line_no,
            AsmErrorKind::LimitExceeded {
                limit,
                what,
                actual,
                cap,
            },
        ));
    }
    Ok(())
}

/// Checks the (actual or declared) data-segment word count against the cap.
fn check_data_words(line_no: usize, words: u64, limits: &AsmLimits) -> Result<(), AsmError> {
    check_limit(
        line_no,
        "max-data-words",
        "data segment length",
        words,
        limits.max_data_words,
    )
}

pub(crate) fn assemble_impl(
    source: &str,
    data_base: u64,
    limits: &AsmLimits,
) -> Result<Program, AsmError> {
    check_limit(
        0,
        "max-source-bytes",
        "source length",
        source.len() as u64,
        limits.max_source_bytes,
    )?;
    let mut segment = SegmentState::Text;
    let mut data: Vec<u64> = Vec::new();
    let mut data_symbols: BTreeMap<String, u64> = BTreeMap::new();
    let mut text_labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut pending: Vec<PendingInst> = Vec::new();

    // Pass 1: collect labels, data and unencoded instructions.
    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let mut line = raw_line;
        if let Some(pos) = line.find(['#', ';']) {
            line = &line[..pos];
        }
        let mut rest = line.trim();

        // Leading labels (there may be several on one line).
        while let Some(colon) = rest.find(':') {
            let (candidate, after) = rest.split_at(colon);
            let candidate = candidate.trim();
            if candidate.is_empty() || !is_label(candidate) {
                break;
            }
            let defined = match segment {
                SegmentState::Text => text_labels
                    .insert(candidate.to_owned(), pending.len() as u32)
                    .is_some(),
                SegmentState::Data => data_symbols
                    .insert(candidate.to_owned(), data_base + data.len() as u64)
                    .is_some(),
            };
            if defined {
                return Err(AsmError::new(
                    line_no,
                    AsmErrorKind::DuplicateLabel(candidate.to_owned()),
                ));
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        if let Some(directive) = rest.strip_prefix('.') {
            let (name, args) = split_first_word(directive);
            match name {
                "text" => segment = SegmentState::Text,
                "data" => segment = SegmentState::Data,
                "word" => {
                    require_data(segment, line_no)?;
                    for item in split_operands(args) {
                        let v = parse_imm(&item).ok_or_else(|| bad_operand(line_no, &item))?;
                        data.push(v as u64);
                    }
                    check_data_words(line_no, data.len() as u64, limits)?;
                }
                "float" => {
                    require_data(segment, line_no)?;
                    for item in split_operands(args) {
                        let v: f64 = item.parse().map_err(|_| bad_operand(line_no, &item))?;
                        data.push(v.to_bits());
                    }
                    check_data_words(line_no, data.len() as u64, limits)?;
                }
                "space" => {
                    require_data(segment, line_no)?;
                    let n = parse_imm(args.trim())
                        .filter(|&n| n >= 0)
                        .ok_or_else(|| bad_operand(line_no, args.trim()))?;
                    // The declared word count is validated while it is still
                    // just a number — `.space 99999999999` must not reach
                    // the allocator.
                    check_data_words(
                        line_no,
                        (data.len() as u64).saturating_add(n as u64),
                        limits,
                    )?;
                    data.extend(std::iter::repeat_n(0u64, n as usize));
                }
                other => {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::UnknownMnemonic(format!(".{other}")),
                    ))
                }
            }
            continue;
        }

        if segment == SegmentState::Data {
            return Err(AsmError::new(
                line_no,
                AsmErrorKind::WrongSegment("instructions are not allowed in the data segment"),
            ));
        }
        let (mnemonic, args) = split_first_word(rest);
        check_limit(
            line_no,
            "max-instructions",
            "text segment length",
            pending.len() as u64 + 1,
            limits.max_instructions,
        )?;
        pending.push(PendingInst {
            line: line_no,
            mnemonic: mnemonic.to_ascii_lowercase(),
            operands: split_operands(args),
        });
    }

    if pending.is_empty() {
        return Err(AsmError::new(0, AsmErrorKind::EmptyProgram));
    }

    // Pass 2: encode.
    let resolver = Resolver {
        text_labels: &text_labels,
        data_symbols: &data_symbols,
    };
    let mut text = Vec::with_capacity(pending.len());
    for inst in &pending {
        text.push(encode(inst, &resolver)?);
    }
    // Control-flow targets (including numeric ones) must land inside the
    // text segment; catching it here beats a BadJump fault at run time.
    for (encoded, pending) in text.iter().zip(&pending) {
        if let Some(target) = encoded.target() {
            if target as usize >= text.len() {
                return Err(AsmError::new(
                    pending.line,
                    AsmErrorKind::BadOperand(format!(
                        "target {target} is outside the {}-instruction text segment",
                        text.len()
                    )),
                ));
            }
        }
    }

    let entry = text_labels.get("main").copied().unwrap_or(0);
    Ok(Program::new(
        text,
        data,
        data_symbols,
        text_labels,
        entry,
        data_base,
    ))
}

fn require_data(segment: SegmentState, line: usize) -> Result<(), AsmError> {
    if segment == SegmentState::Data {
        Ok(())
    } else {
        Err(AsmError::new(
            line,
            AsmErrorKind::WrongSegment("data directives are only allowed in the data segment"),
        ))
    }
}

fn is_label(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn split_first_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(pos) => (&s[..pos], &s[pos..]),
        None => (s, ""),
    }
}

fn split_operands(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_owned)
        .collect()
}

fn parse_imm(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -magnitude } else { magnitude })
}

fn bad_operand(line: usize, op: &str) -> AsmError {
    AsmError::new(line, AsmErrorKind::BadOperand(op.to_owned()))
}

struct Resolver<'a> {
    text_labels: &'a BTreeMap<String, u32>,
    data_symbols: &'a BTreeMap<String, u64>,
}

impl Resolver<'_> {
    fn target(&self, op: &str, line: usize) -> Result<u32, AsmError> {
        if let Some(&idx) = self.text_labels.get(op) {
            return Ok(idx);
        }
        if let Some(v) = parse_imm(op).filter(|&v| v >= 0 && v <= u32::MAX as i64) {
            return Ok(v as u32);
        }
        if is_label(op) {
            Err(AsmError::new(
                line,
                AsmErrorKind::UndefinedLabel(op.to_owned()),
            ))
        } else {
            Err(bad_operand(line, op))
        }
    }

    fn address(&self, op: &str, line: usize) -> Result<i64, AsmError> {
        if let Some(&addr) = self.data_symbols.get(op) {
            return Ok(addr as i64);
        }
        if let Some(v) = parse_imm(op) {
            return Ok(v);
        }
        if is_label(op) {
            Err(AsmError::new(
                line,
                AsmErrorKind::UndefinedLabel(op.to_owned()),
            ))
        } else {
            Err(bad_operand(line, op))
        }
    }
}

fn int_reg(op: &str, line: usize) -> Result<IntReg, AsmError> {
    op.parse()
        .map_err(|_| AsmError::new(line, AsmErrorKind::BadRegister(op.to_owned())))
}

fn fp_reg(op: &str, line: usize) -> Result<FpReg, AsmError> {
    op.parse()
        .map_err(|_| AsmError::new(line, AsmErrorKind::BadRegister(op.to_owned())))
}

/// Parses `offset(base)` or `(base)`; the offset defaults to 0.
fn mem_operand(op: &str, line: usize) -> Result<(i64, IntReg), AsmError> {
    let open = op.find('(').ok_or_else(|| bad_operand(line, op))?;
    let close = op.rfind(')').filter(|&c| c > open);
    let close = close.ok_or_else(|| bad_operand(line, op))?;
    if close != op.len() - 1 {
        return Err(bad_operand(line, op));
    }
    let offset_text = op[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        parse_imm(offset_text).ok_or_else(|| bad_operand(line, op))?
    };
    let base = int_reg(op[open + 1..close].trim(), line)?;
    Ok((offset, base))
}

fn expect(ops: &[String], n: usize, line: usize, shape: &'static str) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(AsmError::new(
            line,
            AsmErrorKind::OperandCount { expected: shape },
        ))
    }
}

fn encode(inst: &PendingInst, resolver: &Resolver<'_>) -> Result<Inst, AsmError> {
    let line = inst.line;
    let ops = &inst.operands;

    macro_rules! rrr {
        ($variant:ident) => {{
            expect(ops, 3, line, "rd, rs, rt")?;
            Inst::$variant {
                rd: int_reg(&ops[0], line)?,
                rs: int_reg(&ops[1], line)?,
                rt: int_reg(&ops[2], line)?,
            }
        }};
    }
    macro_rules! shift {
        ($variant:ident) => {{
            expect(ops, 3, line, "rd, rs, shamt")?;
            let shamt = parse_imm(&ops[2])
                .filter(|&v| (0..64).contains(&v))
                .ok_or_else(|| bad_operand(line, &ops[2]))?;
            Inst::$variant {
                rd: int_reg(&ops[0], line)?,
                rs: int_reg(&ops[1], line)?,
                shamt: shamt as u8,
            }
        }};
    }
    macro_rules! immop {
        ($variant:ident) => {{
            expect(ops, 3, line, "rt, rs, imm")?;
            Inst::$variant {
                rt: int_reg(&ops[0], line)?,
                rs: int_reg(&ops[1], line)?,
                imm: parse_imm(&ops[2]).ok_or_else(|| bad_operand(line, &ops[2]))?,
            }
        }};
    }
    macro_rules! fff {
        ($variant:ident) => {{
            expect(ops, 3, line, "fd, fs, ft")?;
            Inst::$variant {
                fd: fp_reg(&ops[0], line)?,
                fs: fp_reg(&ops[1], line)?,
                ft: fp_reg(&ops[2], line)?,
            }
        }};
    }
    macro_rules! ff {
        ($variant:ident) => {{
            expect(ops, 2, line, "fd, fs")?;
            Inst::$variant {
                fd: fp_reg(&ops[0], line)?,
                fs: fp_reg(&ops[1], line)?,
            }
        }};
    }
    macro_rules! fcmp {
        ($variant:ident) => {{
            expect(ops, 3, line, "rd, fs, ft")?;
            Inst::$variant {
                rd: int_reg(&ops[0], line)?,
                fs: fp_reg(&ops[1], line)?,
                ft: fp_reg(&ops[2], line)?,
            }
        }};
    }
    macro_rules! branch {
        ($variant:ident, $a:expr, $b:expr) => {{
            expect(ops, 3, line, "rs, rt, target")?;
            Inst::$variant {
                rs: int_reg(&ops[$a], line)?,
                rt: int_reg(&ops[$b], line)?,
                target: resolver.target(&ops[2], line)?,
            }
        }};
    }

    let encoded = match inst.mnemonic.as_str() {
        "add" => rrr!(Add),
        "sub" => rrr!(Sub),
        "and" => rrr!(And),
        "or" => rrr!(Or),
        "xor" => rrr!(Xor),
        "nor" => rrr!(Nor),
        "slt" => rrr!(Slt),
        "sltu" => rrr!(Sltu),
        "sllv" => rrr!(Sllv),
        "srlv" => rrr!(Srlv),
        "mul" => rrr!(Mul),
        "div" => rrr!(Div),
        "rem" => rrr!(Rem),
        "sll" => shift!(Sll),
        "srl" => shift!(Srl),
        "sra" => shift!(Sra),
        "addi" => immop!(Addi),
        "andi" => immop!(Andi),
        "ori" => immop!(Ori),
        "xori" => immop!(Xori),
        "slti" => immop!(Slti),
        "li" => {
            expect(ops, 2, line, "rd, imm")?;
            Inst::Li {
                rd: int_reg(&ops[0], line)?,
                imm: parse_imm(&ops[1]).ok_or_else(|| bad_operand(line, &ops[1]))?,
            }
        }
        "la" => {
            expect(ops, 2, line, "rd, symbol")?;
            Inst::Li {
                rd: int_reg(&ops[0], line)?,
                imm: resolver.address(&ops[1], line)?,
            }
        }
        "lw" | "sw" => {
            expect(ops, 2, line, "rt, offset(base)")?;
            let rt = int_reg(&ops[0], line)?;
            let (offset, base) = mem_operand(&ops[1], line)?;
            if inst.mnemonic == "lw" {
                Inst::Lw { rt, base, offset }
            } else {
                Inst::Sw { rt, base, offset }
            }
        }
        "flw" | "fsw" => {
            expect(ops, 2, line, "ft, offset(base)")?;
            let ft = fp_reg(&ops[0], line)?;
            let (offset, base) = mem_operand(&ops[1], line)?;
            if inst.mnemonic == "flw" {
                Inst::Flw { ft, base, offset }
            } else {
                Inst::Fsw { ft, base, offset }
            }
        }
        "fadd" => fff!(Fadd),
        "fsub" => fff!(Fsub),
        "fmul" => fff!(Fmul),
        "fdiv" => fff!(Fdiv),
        "fsqrt" => ff!(Fsqrt),
        "fneg" => ff!(Fneg),
        "fabs" => ff!(Fabs),
        "fmov" => ff!(Fmov),
        "fclt" => fcmp!(Fclt),
        "fcle" => fcmp!(Fcle),
        "fceq" => fcmp!(Fceq),
        "cvtif" => {
            expect(ops, 2, line, "fd, rs")?;
            Inst::Cvtif {
                fd: fp_reg(&ops[0], line)?,
                rs: int_reg(&ops[1], line)?,
            }
        }
        "cvtfi" => {
            expect(ops, 2, line, "rd, fs")?;
            Inst::Cvtfi {
                rd: int_reg(&ops[0], line)?,
                fs: fp_reg(&ops[1], line)?,
            }
        }
        "beq" => branch!(Beq, 0, 1),
        "bne" => branch!(Bne, 0, 1),
        "blt" => branch!(Blt, 0, 1),
        "bge" => branch!(Bge, 0, 1),
        // ble rs,rt == bge rt,rs ; bgt rs,rt == blt rt,rs
        "ble" => branch!(Bge, 1, 0),
        "bgt" => branch!(Blt, 1, 0),
        "beqz" | "bnez" => {
            expect(ops, 2, line, "rs, target")?;
            let rs = int_reg(&ops[0], line)?;
            let target = resolver.target(&ops[1], line)?;
            if inst.mnemonic == "beqz" {
                Inst::Beq {
                    rs,
                    rt: IntReg::ZERO,
                    target,
                }
            } else {
                Inst::Bne {
                    rs,
                    rt: IntReg::ZERO,
                    target,
                }
            }
        }
        "j" | "b" => {
            expect(ops, 1, line, "target")?;
            Inst::J {
                target: resolver.target(&ops[0], line)?,
            }
        }
        "jal" => {
            expect(ops, 1, line, "target")?;
            Inst::Jal {
                target: resolver.target(&ops[0], line)?,
            }
        }
        "jr" => {
            expect(ops, 1, line, "rs")?;
            Inst::Jr {
                rs: int_reg(&ops[0], line)?,
            }
        }
        "mv" | "move" => {
            expect(ops, 2, line, "rd, rs")?;
            Inst::Addi {
                rt: int_reg(&ops[0], line)?,
                rs: int_reg(&ops[1], line)?,
                imm: 0,
            }
        }
        "syscall" => {
            expect(ops, 0, line, "(none)")?;
            Inst::Syscall
        }
        "nop" => {
            expect(ops, 0, line, "(none)")?;
            Inst::Nop
        }
        "halt" => {
            expect(ops, 0, line, "(none)")?;
            Inst::Halt
        }
        other => {
            return Err(AsmError::new(
                line,
                AsmErrorKind::UnknownMnemonic(other.to_owned()),
            ))
        }
    };
    Ok(encoded)
}

#[cfg(test)]
mod tests {
    use crate::{assemble, assemble_at, assemble_with_limits, AsmErrorKind, AsmLimits};
    use paragraph_isa::{Inst, IntReg};

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    #[test]
    fn a_huge_space_declaration_is_rejected_not_allocated() {
        // 2^40 words would be 8 TiB; the declared count must be refused
        // while it is still just a number. Even the *default* limits catch
        // it — no opt-in required.
        let err = assemble(".data\nbuf: .space 1099511627776\n.text\nhalt\n").unwrap_err();
        assert!(err.is_limit(), "got {err:?}");
        assert_eq!(err.line(), 2);
        let AsmErrorKind::LimitExceeded { limit, .. } = err.kind() else {
            panic!("expected LimitExceeded, got {:?}", err.kind());
        };
        assert_eq!(*limit, "max-data-words");
    }

    #[test]
    fn space_within_limits_still_reserves_words() {
        let program = assemble(".data\nbuf: .space 8\n.text\nhalt\n").unwrap();
        assert_eq!(program.data_words().len(), 8);
    }

    #[test]
    fn explicit_limits_cap_source_text_and_data() {
        let limits = AsmLimits {
            max_source_bytes: 16,
            ..AsmLimits::default()
        };
        let err =
            assemble_with_limits(".text\nnop\nnop\nnop\nhalt\n", 0x1000, &limits).unwrap_err();
        assert!(err.is_limit());
        assert_eq!(err.line(), 0);

        let limits = AsmLimits {
            max_instructions: 2,
            ..AsmLimits::default()
        };
        let err =
            assemble_with_limits(".text\nnop\nnop\nnop\nhalt\n", 0x1000, &limits).unwrap_err();
        assert!(err.is_limit());
        assert_eq!(err.line(), 4, "the third instruction trips the cap");

        let limits = AsmLimits {
            max_data_words: 2,
            ..AsmLimits::default()
        };
        let err = assemble_with_limits(".data\nv: .word 1, 2, 3\n.text\nhalt\n", 0x1000, &limits)
            .unwrap_err();
        assert!(err.is_limit());
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn limit_errors_render_the_numbers() {
        let err = assemble(".data\nbuf: .space 99999999999999\n.text\nhalt\n").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("max-data-words"), "{text}");
        assert!(text.contains("99999999999999"), "{text}");
    }

    #[test]
    fn assembles_every_mnemonic_family() {
        let program = assemble(
            "
            .data
        nums:   .word 1, -2, 0x10
        reals:  .float 1.5, -0.25
        buf:    .space 4
            .text
        main:
            add r1, r2, r3
            mul r4, r5, r6
            div r7, r8, r9
            sll r1, r2, 5
            addi r1, r2, -7
            li r1, 100
            la r2, nums
            lw r3, 1(r2)
            sw r3, (r2)
            flw f1, 0(r2)
            fsw f1, 2(r2)
            fadd f2, f3, f4
            fsqrt f5, f6
            fclt r4, f1, f2
            cvtif f0, r4
            cvtfi r4, f0
        loop:
            beq r1, r2, loop
            ble r1, r2, loop
            beqz r1, loop
            b loop
            jal main
            jr ra
            syscall
            nop
            halt
        ",
        )
        .unwrap();
        assert_eq!(program.text().len(), 25);
        assert_eq!(program.data_words().len(), 9);
        assert_eq!(program.data_words()[2], 0x10);
        assert_eq!(program.data_words()[3], 1.5f64.to_bits());
    }

    #[test]
    fn labels_resolve_to_instruction_indices() {
        let program = assemble(
            "
            .text
        main:
            li r4, 3
        top:
            addi r4, r4, -1
            bne r4, r0, top
            halt
        ",
        )
        .unwrap();
        assert_eq!(program.text_label("top"), Some(1));
        assert_eq!(
            program.text()[2],
            Inst::Bne {
                rs: r(4),
                rt: r(0),
                target: 1
            }
        );
    }

    #[test]
    fn entry_defaults_to_zero_without_main() {
        let program = assemble(".text\n nop\n halt\n").unwrap();
        assert_eq!(program.entry(), 0);
    }

    #[test]
    fn entry_is_main_when_defined() {
        let program = assemble(".text\n nop\nmain:\n halt\n").unwrap();
        assert_eq!(program.entry(), 1);
    }

    #[test]
    fn la_resolves_data_symbols_with_custom_base() {
        let program = assemble_at(
            ".data\nx: .word 9\ny: .word 10\n.text\n la r1, y\n halt\n",
            5000,
        )
        .unwrap();
        assert_eq!(
            program.text()[0],
            Inst::Li {
                rd: r(1),
                imm: 5001
            }
        );
    }

    #[test]
    fn pseudo_ble_swaps_operands() {
        let program = assemble(".text\nmain:\n ble r1, r2, main\n halt\n").unwrap();
        assert_eq!(
            program.text()[0],
            Inst::Bge {
                rs: r(2),
                rt: r(1),
                target: 0
            }
        );
    }

    #[test]
    fn mv_expands_to_addi_zero() {
        let program = assemble(".text\n mv r5, r6\n halt\n").unwrap();
        assert_eq!(
            program.text()[0],
            Inst::Addi {
                rt: r(5),
                rs: r(6),
                imm: 0
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let program =
            assemble("# leading comment\n\n.text\n nop ; trailing\n halt # end\n").unwrap();
        assert_eq!(program.text().len(), 2);
    }

    #[test]
    fn abi_register_aliases_parse() {
        let program = assemble(".text\n addi sp, sp, -4\n jr ra\n halt\n").unwrap();
        assert_eq!(
            program.text()[0],
            Inst::Addi {
                rt: r(29),
                rs: r(29),
                imm: -4
            }
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let err = assemble(".text\nx:\n nop\nx:\n halt\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::DuplicateLabel(l) if l == "x"));
        assert_eq!(err.line(), 4);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let err = assemble(".text\n j nowhere\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::UndefinedLabel(l) if l == "nowhere"));
    }

    #[test]
    fn unknown_mnemonic_is_an_error() {
        let err = assemble(".text\n frob r1\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::UnknownMnemonic(m) if m == "frob"));
    }

    #[test]
    fn bad_register_is_an_error() {
        let err = assemble(".text\n add r1, r2, r99\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::BadRegister(reg) if reg == "r99"));
    }

    #[test]
    fn operand_count_is_checked() {
        let err = assemble(".text\n add r1, r2\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::OperandCount { .. }));
    }

    #[test]
    fn data_in_text_segment_is_an_error() {
        let err = assemble(".text\n .word 1\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::WrongSegment(_)));
    }

    #[test]
    fn instructions_in_data_segment_are_an_error() {
        let err = assemble(".data\n add r1, r2, r3\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::WrongSegment(_)));
    }

    #[test]
    fn empty_program_is_an_error() {
        let err = assemble("# nothing\n.data\nx: .word 1\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::EmptyProgram));
    }

    #[test]
    fn shift_amount_range_is_checked() {
        assert!(assemble(".text\n sll r1, r2, 63\n halt\n").is_ok());
        assert!(assemble(".text\n sll r1, r2, 64\n halt\n").is_err());
        assert!(assemble(".text\n sll r1, r2, -1\n halt\n").is_err());
    }

    #[test]
    fn numeric_branch_targets_are_allowed() {
        let program = assemble(".text\n j 0\n halt\n").unwrap();
        assert_eq!(program.text()[0], Inst::J { target: 0 });
    }

    #[test]
    fn out_of_range_targets_are_rejected_at_assembly() {
        let err = assemble(".text\n j 99\n halt\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::BadOperand(_)));
        assert_eq!(err.line(), 2);
        assert!(assemble(".text\n beq r1, r2, 2\n halt\n").is_err());
        assert!(assemble(".text\n beq r1, r2, 1\n halt\n").is_ok());
    }

    #[test]
    fn multiple_labels_one_line() {
        let program = assemble(".text\na: b: c: nop\n halt\n").unwrap();
        assert_eq!(program.text_label("a"), Some(0));
        assert_eq!(program.text_label("b"), Some(0));
        assert_eq!(program.text_label("c"), Some(0));
    }

    #[test]
    fn mem_operand_forms() {
        let program =
            assemble(".text\n lw r1, 4(r2)\n lw r1, (r2)\n lw r1, -4(r2)\n halt\n").unwrap();
        assert_eq!(
            program.text()[1],
            Inst::Lw {
                rt: r(1),
                base: r(2),
                offset: 0
            }
        );
        assert_eq!(
            program.text()[2],
            Inst::Lw {
                rt: r(1),
                base: r(2),
                offset: -4
            }
        );
        assert!(assemble(".text\n lw r1, 4(r2\n halt\n").is_err());
        assert!(assemble(".text\n lw r1, 4[r2]\n halt\n").is_err());
    }

    #[test]
    fn round_trip_display_reassembles() {
        // Every instruction's Display form must be accepted by the parser.
        let source = "
            .text
        main:
            add r1, r2, r3
            sll r4, r5, 7
            addi r6, r7, -32
            li r8, 123456789
            lw r9, 8(r10)
            fsw f11, -2(r12)
            fadd f1, f2, f3
            fclt r2, f1, f3
            beq r1, r2, 0
            j 3
            jr r31
            syscall
            halt
        ";
        let first = assemble(source).unwrap();
        let second = assemble(&first.disassemble()).unwrap();
        assert_eq!(first.text(), second.text());
    }
}

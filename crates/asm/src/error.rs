//! Assembler errors.

use std::error::Error;
use std::fmt;

/// What went wrong during assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// A mnemonic or directive that the assembler does not know.
    UnknownMnemonic(String),
    /// A register name that failed to parse.
    BadRegister(String),
    /// A malformed or out-of-range immediate / literal.
    BadOperand(String),
    /// Wrong number or shape of operands for the mnemonic.
    OperandCount {
        /// Human-readable description of the expected operand shape.
        expected: &'static str,
    },
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// Instructions appeared in the data segment or data in the text
    /// segment.
    WrongSegment(&'static str),
    /// The program has no text segment.
    EmptyProgram,
    /// The source tripped an assembler resource limit (see
    /// [`AsmLimits`](crate::AsmLimits)). Raised before any allocation is
    /// made on the declaration's behalf, so a hostile `.space` cannot
    /// balloon memory.
    LimitExceeded {
        /// Stable name of the limit that tripped (e.g. `max-data-words`).
        limit: &'static str,
        /// What was being measured when the limit tripped.
        what: &'static str,
        /// The offending value.
        actual: u64,
        /// The configured cap.
        cap: u64,
    },
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::BadRegister(r) => write!(f, "invalid register `{r}`"),
            AsmErrorKind::BadOperand(o) => write!(f, "invalid operand `{o}`"),
            AsmErrorKind::OperandCount { expected } => {
                write!(f, "expected operands: {expected}")
            }
            AsmErrorKind::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::WrongSegment(what) => write!(f, "{what}"),
            AsmErrorKind::EmptyProgram => write!(f, "program has no instructions"),
            AsmErrorKind::LimitExceeded {
                limit,
                what,
                actual,
                cap,
            } => write!(f, "{what} {actual} exceeds the {limit} limit of {cap}"),
        }
    }
}

/// An assembly failure, carrying the 1-based source line it occurred on.
///
/// # Examples
///
/// ```
/// use paragraph_asm::assemble;
///
/// let err = assemble(".text\n  frobnicate r1, r2\n").unwrap_err();
/// assert_eq!(err.line(), 2);
/// assert!(err.to_string().contains("frobnicate"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    kind: AsmErrorKind,
}

impl AsmError {
    pub(crate) fn new(line: usize, kind: AsmErrorKind) -> AsmError {
        AsmError { line, kind }
    }

    /// The 1-based source line the error occurred on (0 for whole-program
    /// errors such as an empty program).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error detail.
    pub fn kind(&self) -> &AsmErrorKind {
        &self.kind
    }

    /// Whether this error is a resource-limit rejection (as opposed to a
    /// syntax or semantic error). Callers use this to distinguish
    /// "malformed program" from "program refused by policy".
    pub fn is_limit(&self) -> bool {
        matches!(self.kind, AsmErrorKind::LimitExceeded { .. })
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.kind)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.kind)
        }
    }
}

impl Error for AsmError {}

//! The assembled program artifact.

use paragraph_isa::Inst;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default word address of the start of the data segment.
///
/// Leaving the first page of the address space unused makes stray null
/// pointers fault in the VM instead of silently reading data.
pub const DEFAULT_DATA_BASE: u64 = 0x1000;

/// An assembled program: text, initialized data, and symbols.
///
/// # Examples
///
/// ```
/// use paragraph_asm::assemble;
///
/// let program = assemble("
///     .data
/// x:  .word 7
///     .text
/// main:
///     la r8, x
///     lw r9, 0(r8)
///     halt
/// ")?;
/// assert_eq!(program.symbol("x"), Some(program.data_base()));
/// assert_eq!(program.data_words()[0], 7i64 as u64);
/// # Ok::<(), paragraph_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    text: Vec<Inst>,
    data: Vec<u64>,
    symbols: BTreeMap<String, u64>,
    text_labels: BTreeMap<String, u32>,
    entry: u32,
    data_base: u64,
}

impl Program {
    pub(crate) fn new(
        text: Vec<Inst>,
        data: Vec<u64>,
        symbols: BTreeMap<String, u64>,
        text_labels: BTreeMap<String, u32>,
        entry: u32,
        data_base: u64,
    ) -> Program {
        Program {
            text,
            data,
            symbols,
            text_labels,
            entry,
            data_base,
        }
    }

    /// The instructions of the text segment, in address order.
    pub fn text(&self) -> &[Inst] {
        &self.text
    }

    /// The initialized data segment as raw 64-bit words (integers stored
    /// two's-complement, floats as IEEE-754 bits).
    pub fn data_words(&self) -> &[u64] {
        &self.data
    }

    /// The word address where the data segment is loaded.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// One past the last initialized data word (the initial heap break).
    pub fn data_end(&self) -> u64 {
        self.data_base + self.data.len() as u64
    }

    /// Instruction index execution starts at (the `main` label, or 0).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The word address of a data label.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// The instruction index of a text label.
    pub fn text_label(&self, name: &str) -> Option<u32> {
        self.text_labels.get(name).copied()
    }

    /// All data symbols in address order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// Renders the program back to assembly text, with text labels and data
    /// symbols reconstructed at their definition sites.
    ///
    /// The output is a complete serialization: assembling it with
    /// [`assemble_at`](crate::assemble_at) at the same data base reproduces
    /// the program exactly (text, data image, symbols and entry point).
    /// Data words are emitted as their raw 64-bit patterns, so
    /// floating-point data survives bit-exactly.
    pub fn disassemble(&self) -> String {
        let mut by_index: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, &idx) in &self.text_labels {
            by_index.entry(idx).or_default().push(name);
        }
        let mut by_addr: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        if !self.data.is_empty() {
            let _ = writeln!(out, "        .data   # {} words", self.data.len());
            for (i, &word) in self.data.iter().enumerate() {
                if let Some(labels) = by_addr.get(&(self.data_base + i as u64)) {
                    for label in labels {
                        let _ = writeln!(out, "{label}:");
                    }
                }
                let _ = writeln!(out, "        .word {}", word as i64);
            }
        }
        let _ = writeln!(out, "        .text");
        for (i, inst) in self.text.iter().enumerate() {
            if let Some(labels) = by_index.get(&(i as u32)) {
                for label in labels {
                    let _ = writeln!(out, "{label}:");
                }
            }
            let _ = writeln!(out, "        {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{assemble, assemble_at};

    #[test]
    fn disassemble_contains_labels_and_instructions() {
        let program = assemble(
            "
            .text
        main:
            li r4, 1
        loop:
            addi r4, r4, -1
            bne r4, r0, loop
            halt
        ",
        )
        .unwrap();
        let text = program.disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("loop:"));
        assert!(text.contains("addi r4, r4, -1"));
    }

    #[test]
    fn disassembly_is_a_complete_serialization() {
        let original = assemble_at(
            "
            .data
        ints:   .word -5, 0x10
        reals:  .float 2.75, -0.125
        gap:    .space 3
            .text
        main:
            la r8, reals
            flw f1, 0(r8)
        loop:
            bne r8, r0, loop
            halt
        ",
            0x1000,
        )
        .unwrap();
        let text = original.disassemble();
        let rebuilt = assemble_at(&text, 0x1000).unwrap();
        assert_eq!(rebuilt.text(), original.text());
        assert_eq!(rebuilt.data_words(), original.data_words());
        assert_eq!(rebuilt.entry(), original.entry());
        assert_eq!(
            rebuilt.symbols().collect::<Vec<_>>(),
            original.symbols().collect::<Vec<_>>()
        );
        assert_eq!(rebuilt.text_label("loop"), original.text_label("loop"));
    }

    #[test]
    fn data_end_accounts_for_every_word() {
        let program = assemble(
            "
            .data
        a:  .word 1, 2, 3
        b:  .space 5
            .text
            halt
        ",
        )
        .unwrap();
        assert_eq!(program.data_end() - program.data_base(), 8);
        assert_eq!(program.symbol("b"), Some(program.data_base() + 3));
    }
}

//! Resource limits for assembling untrusted source.
//!
//! The assembler is part of the toolkit's front door: workload sources may
//! arrive from generators, fuzzers, or other people's machines. A hostile
//! source must not be able to make the assembler allocate unbounded memory —
//! in particular, a `.space` directive *declares* a word count, and that
//! declaration has to be checked against a cap before any buffer is sized
//! from it.
//!
//! The naming mirrors `paragraph_trace::govern`: every violation carries a
//! stable `limit` name, the thing that tripped it, and the two numbers.

use std::env;

/// Caps applied while assembling a source file.
///
/// The defaults are generous — far beyond any real workload in the
/// repository — so ordinary assembly never notices them; they exist to turn
/// "allocate 8 TiB because one line asked for it" into a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsmLimits {
    /// Maximum source length in bytes.
    pub max_source_bytes: u64,
    /// Maximum number of text-segment instructions.
    pub max_instructions: u64,
    /// Maximum number of 64-bit data-segment words, including words a
    /// `.space` directive merely *declares*.
    pub max_data_words: u64,
}

impl Default for AsmLimits {
    fn default() -> AsmLimits {
        AsmLimits {
            max_source_bytes: 1 << 26, // 64 MiB of text
            max_instructions: 1 << 22, // 4M instructions
            max_data_words: 1 << 24,   // 128 MiB of data
        }
    }
}

impl AsmLimits {
    /// Tight caps for fuzzing: small enough that a fuzz iteration cannot
    /// spend meaningful time or memory even on a pathological input.
    pub fn strict() -> AsmLimits {
        AsmLimits {
            max_source_bytes: 1 << 20,
            max_instructions: 1 << 14,
            max_data_words: 1 << 16,
        }
    }

    /// Defaults overridden by `PARAGRAPH_ASM_MAX_SOURCE_BYTES`,
    /// `PARAGRAPH_ASM_MAX_INSTRUCTIONS`, and `PARAGRAPH_ASM_MAX_DATA_WORDS`.
    /// Unset or unparseable variables keep the default for that cap.
    pub fn from_env() -> AsmLimits {
        fn read(name: &str, default: u64) -> u64 {
            env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        }
        let d = AsmLimits::default();
        AsmLimits {
            max_source_bytes: read("PARAGRAPH_ASM_MAX_SOURCE_BYTES", d.max_source_bytes),
            max_instructions: read("PARAGRAPH_ASM_MAX_INSTRUCTIONS", d.max_instructions),
            max_data_words: read("PARAGRAPH_ASM_MAX_DATA_WORDS", d.max_data_words),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous_and_strict_is_not() {
        let d = AsmLimits::default();
        let s = AsmLimits::strict();
        assert!(d.max_source_bytes > s.max_source_bytes);
        assert!(d.max_instructions > s.max_instructions);
        assert!(d.max_data_words > s.max_data_words);
    }

    #[test]
    fn env_overrides_parse_and_ignore_garbage() {
        // Env vars are process-global; run both cases in one test to avoid
        // racing a parallel test over the same variable.
        env::set_var("PARAGRAPH_ASM_MAX_DATA_WORDS", "123");
        assert_eq!(AsmLimits::from_env().max_data_words, 123);
        env::set_var("PARAGRAPH_ASM_MAX_DATA_WORDS", "not a number");
        assert_eq!(
            AsmLimits::from_env().max_data_words,
            AsmLimits::default().max_data_words
        );
        env::remove_var("PARAGRAPH_ASM_MAX_DATA_WORDS");
    }
}

//! A two-pass assembler for the Paragraph toolkit's assembly language.
//!
//! The reproduction's workloads are written in (or generated as) a small
//! MIPS-flavoured assembly language, assembled by this crate into
//! [`Program`]s that the `paragraph-vm` interpreter executes and traces.
//!
//! # Language
//!
//! ```text
//! # comments run to end of line ('#' or ';')
//!         .data
//! vec:    .word 1, 2, 3, 4       # 64-bit integer words
//! pi:     .float 3.14159         # 64-bit float words
//! buf:    .space 16              # 16 zeroed words
//!         .text
//! main:   li   r8, 4             # loop counter
//!         la   r9, vec
//! loop:   lw   r10, 0(r9)
//!         add  r11, r11, r10
//!         addi r9, r9, 1
//!         addi r8, r8, -1
//!         bne  r8, r0, loop
//!         halt
//! ```
//!
//! * Registers: `r0`..`r31` (plus ABI aliases `zero, v0, v1, a0..a3, sp, fp,
//!   ra`), floating point `f0`..`f31`.
//! * Memory is word-addressed; each word holds a 64-bit integer or float.
//! * Labels may be used wherever a branch/jump target or `la` address is
//!   expected.
//! * Pseudo-instructions: `mv`, `b`, `beqz`, `bnez`, `ble`, `bgt` —
//!   expanded during assembly (each to exactly one machine instruction).
//! * Execution starts at the `main` label if defined, otherwise at the first
//!   text instruction.
//!
//! # Examples
//!
//! ```
//! use paragraph_asm::assemble;
//!
//! let program = assemble("
//!     .text
//! main:
//!     li r4, 2
//!     li r5, 3
//!     add r6, r4, r5
//!     halt
//! ")?;
//! assert_eq!(program.text().len(), 4);
//! # Ok::<(), paragraph_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod limits;
mod parser;
mod program;

pub use error::{AsmError, AsmErrorKind};
pub use limits::AsmLimits;
pub use program::{Program, DEFAULT_DATA_BASE};

/// Assembles `source` with the default options (data segment at
/// [`DEFAULT_DATA_BASE`]).
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the offending line for syntax errors,
/// unknown mnemonics or registers, duplicate or undefined labels, and
/// out-of-range operands.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_at(source, DEFAULT_DATA_BASE)
}

/// Assembles `source`, placing the data segment at word address `data_base`.
///
/// # Errors
///
/// As for [`assemble`].
pub fn assemble_at(source: &str, data_base: u64) -> Result<Program, AsmError> {
    parser::assemble_impl(source, data_base, &AsmLimits::default())
}

/// Assembles `source` under explicit [`AsmLimits`] — the entry point for
/// untrusted input. Any limit violation surfaces as
/// [`AsmErrorKind::LimitExceeded`], raised before the assembler allocates
/// anything on the offending declaration's behalf (a hostile
/// `.space 99999999999` is rejected as a number, not as a buffer).
///
/// # Errors
///
/// As for [`assemble`], plus [`AsmErrorKind::LimitExceeded`].
pub fn assemble_with_limits(
    source: &str,
    data_base: u64,
    limits: &AsmLimits,
) -> Result<Program, AsmError> {
    parser::assemble_impl(source, data_base, limits)
}

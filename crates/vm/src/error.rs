//! VM runtime errors.

use std::error::Error;
use std::fmt;

/// What went wrong during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmErrorKind {
    /// A load or store touched the null page or an address beyond the
    /// address-space limit.
    MemoryFault {
        /// The offending word address.
        addr: u64,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A branch, jump, or fall-through left the text segment.
    BadJump {
        /// The target instruction index.
        target: u64,
    },
    /// An unknown system-call number in `r2`.
    UnknownSyscall {
        /// The unrecognized call number.
        number: i64,
    },
    /// A `read_int` system call with no input left in the queue.
    InputExhausted,
    /// The machine's hard fuel limit ([`Vm::set_fuel_limit`]) was reached.
    /// Unlike [`HaltReason::FuelExhausted`] — an orderly trace truncation —
    /// this is the typed failure for a workload that was expected to
    /// terminate but did not.
    ///
    /// [`Vm::set_fuel_limit`]: crate::Vm::set_fuel_limit
    /// [`HaltReason::FuelExhausted`]: crate::HaltReason::FuelExhausted
    FuelExhausted {
        /// The configured hard limit, in dynamic instructions.
        limit: u64,
    },
}

impl fmt::Display for VmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmErrorKind::MemoryFault { addr } => write!(f, "memory fault at word {addr:#x}"),
            VmErrorKind::DivideByZero => write!(f, "integer division by zero"),
            VmErrorKind::BadJump { target } => {
                write!(f, "control transfer to invalid instruction index {target}")
            }
            VmErrorKind::UnknownSyscall { number } => {
                write!(f, "unknown system call number {number}")
            }
            VmErrorKind::InputExhausted => write!(f, "read_int with empty input queue"),
            VmErrorKind::FuelExhausted { limit } => {
                write!(f, "hard fuel limit of {limit} instructions exhausted")
            }
        }
    }
}

/// A runtime fault, carrying the instruction index it occurred at.
///
/// # Examples
///
/// ```
/// use paragraph_asm::assemble;
/// use paragraph_vm::{Vm, VmErrorKind};
///
/// let program = assemble(".text\nmain:\n lw r1, 0(r0)\n halt\n")?;
/// let err = Vm::new(program).run(10).unwrap_err();
/// assert!(matches!(err.kind(), VmErrorKind::MemoryFault { addr: 0 }));
/// assert_eq!(err.pc(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmError {
    pc: u64,
    kind: VmErrorKind,
}

impl VmError {
    pub(crate) fn new(pc: u64, kind: VmErrorKind) -> VmError {
        VmError { pc, kind }
    }

    /// The instruction index at which the fault occurred.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The fault detail.
    pub fn kind(&self) -> VmErrorKind {
        self.kind
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm fault at instruction {}: {}", self.pc, self.kind)
    }
}

impl Error for VmError {}

//! The interpreter.

use crate::error::{VmError, VmErrorKind};
use crate::memory::{Memory, STACK_TOP};
use crate::syscall::Syscall;
use paragraph_asm::Program;
use paragraph_isa::{abi, FpReg, Inst, IntReg, OpClass};
use paragraph_trace::{Loc, SegmentMap, TraceRecord};
use std::collections::VecDeque;

/// Default fuel for [`Vm::run`]: the paper's 100M-instruction trace cap.
pub const DEFAULT_FUEL: u64 = 100_000_000;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// A `halt` instruction was executed.
    Halt,
    /// An `exit` system call was executed, with this exit code.
    Exit(i64),
    /// The fuel budget was exhausted; the program could continue. This is
    /// the paper's situation for 8 of the 10 SPEC benchmarks (traces
    /// truncated at 100M instructions).
    FuelExhausted,
}

/// Outcome of a (fault-free) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    executed: u64,
    reason: HaltReason,
}

impl RunOutcome {
    /// Dynamic instructions executed during this run.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Why the run stopped.
    pub fn reason(&self) -> HaltReason {
        self.reason
    }

    /// Whether the program came to a proper end (`halt` or `exit`) rather
    /// than running out of fuel.
    pub fn halted(&self) -> bool {
        !matches!(self.reason, HaltReason::FuelExhausted)
    }
}

/// The virtual machine: registers, memory, and I/O queues for one program.
///
/// See the [crate documentation](crate) for the machine model and an
/// example.
#[derive(Debug, Clone)]
pub struct Vm {
    program: Program,
    pc: u32,
    int_regs: [i64; 32],
    fp_regs: [f64; 32],
    mem: Memory,
    brk: u64,
    input: VecDeque<i64>,
    output: String,
    executed: u64,
    halted: Option<HaltReason>,
    /// Hard cap on total executed instructions; exceeding it is a fault
    /// ([`VmErrorKind::FuelExhausted`]), not an orderly truncation.
    fuel_limit: Option<u64>,
}

impl Vm {
    /// Creates a machine with `program` loaded: data segment in memory, the
    /// stack pointer at [`STACK_TOP`], and the pc at the program entry.
    pub fn new(program: Program) -> Vm {
        let mem = Vm::image_data(&program);
        let mut int_regs = [0i64; 32];
        int_regs[abi::SP.index() as usize] = STACK_TOP as i64;
        Vm {
            pc: program.entry(),
            brk: program.data_end(),
            program,
            int_regs,
            fp_regs: [0.0; 32],
            mem,
            input: VecDeque::new(),
            output: String::new(),
            executed: 0,
            halted: None,
            fuel_limit: None,
        }
    }

    /// Images the program's data segment into a fresh memory. The assembler
    /// bounds data segments well under the address ceiling, so a write can
    /// only fail on a corrupted `Program`.
    fn image_data(program: &Program) -> Memory {
        let mut mem = Memory::new();
        for (i, &word) in program.data_words().iter().enumerate() {
            let addr = program.data_base() + i as u64;
            if let Err(e) = mem.write(addr, word) {
                panic!("data segment must fit in valid memory: {e:?}");
            }
        }
        mem
    }

    /// Resets the machine to its post-load state: registers cleared (sp at
    /// [`STACK_TOP`]), memory re-imaged from the program's data segment, pc
    /// at the entry point, output and input queues emptied, executed count
    /// zeroed. Cheaper than re-cloning a large program for repeated runs.
    pub fn reset(&mut self) {
        self.mem = Vm::image_data(&self.program);
        self.int_regs = [0; 32];
        self.int_regs[abi::SP.index() as usize] = STACK_TOP as i64;
        self.fp_regs = [0.0; 32];
        self.pc = self.program.entry();
        self.brk = self.program.data_end();
        self.input.clear();
        self.output.clear();
        self.executed = 0;
        self.halted = None;
    }

    /// Sets (or clears) a hard limit on total executed instructions, across
    /// all runs. A workload that reaches the limit returns a typed
    /// [`VmErrorKind::FuelExhausted`] fault instead of looping forever —
    /// use it to bound runaway workloads in batch sweeps, where the
    /// per-[`run`](Vm::run) fuel is an *expected* truncation (the paper's
    /// 100M-instruction trace cap) and must stay a success.
    pub fn set_fuel_limit(&mut self, limit: Option<u64>) -> &mut Vm {
        self.fuel_limit = limit;
        self
    }

    /// The configured hard fuel limit, if any.
    pub fn fuel_limit(&self) -> Option<u64> {
        self.fuel_limit
    }

    /// Queues an integer for the `read_int` system call.
    pub fn push_input(&mut self, value: i64) -> &mut Vm {
        self.input.push_back(value);
        self
    }

    /// Queues many integers for the `read_int` system call.
    pub fn extend_input<I: IntoIterator<Item = i64>>(&mut self, values: I) -> &mut Vm {
        self.input.extend(values);
        self
    }

    /// Everything the program has printed so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Total dynamic instructions executed so far (across runs).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The memory segment map for this program, for
    /// [`AnalysisConfig::with_segments`](../paragraph_core/struct.AnalysisConfig.html):
    /// data below the initial heap break, stack at the top of the address
    /// space.
    pub fn segment_map(&self) -> SegmentMap {
        Memory::segment_map(self.program.data_end())
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Reads an integer register (always 0 for `r0`).
    pub fn int_reg(&self, reg: IntReg) -> i64 {
        self.int_regs[reg.index() as usize]
    }

    /// Reads a floating-point register.
    pub fn fp_reg(&self, reg: FpReg) -> f64 {
        self.fp_regs[reg.index() as usize]
    }

    /// Reads a memory word as raw bits.
    ///
    /// # Errors
    ///
    /// Faults like a program access would.
    pub fn mem_word(&self, addr: u64) -> Result<u64, VmError> {
        self.mem.read(addr)
    }

    /// Runs without capturing a trace.
    ///
    /// # Errors
    ///
    /// Returns the first runtime fault (memory fault, division by zero, bad
    /// jump, unknown syscall, exhausted input).
    pub fn run(&mut self, fuel: u64) -> Result<RunOutcome, VmError> {
        self.run_traced(fuel, |_| {})
    }

    /// Runs, invoking `sink` with one [`TraceRecord`] per executed
    /// instruction (the Pixie role). Stops at `fuel` instructions, `halt`,
    /// or `exit`.
    ///
    /// # Errors
    ///
    /// As for [`Vm::run`].
    pub fn run_traced<F>(&mut self, fuel: u64, mut sink: F) -> Result<RunOutcome, VmError>
    where
        F: FnMut(&TraceRecord),
    {
        let mut executed_now = 0u64;
        if let Some(reason) = self.halted {
            return Ok(RunOutcome {
                executed: 0,
                reason,
            });
        }
        while executed_now < fuel {
            if let Some(limit) = self.fuel_limit {
                if self.executed >= limit {
                    return Err(VmError::new(
                        u64::from(self.pc),
                        VmErrorKind::FuelExhausted { limit },
                    ));
                }
            }
            match self.step(&mut sink)? {
                None => executed_now += 1,
                Some(reason) => {
                    executed_now += 1;
                    self.halted = Some(reason);
                    return Ok(RunOutcome {
                        executed: executed_now,
                        reason,
                    });
                }
            }
        }
        Ok(RunOutcome {
            executed: executed_now,
            reason: HaltReason::FuelExhausted,
        })
    }

    /// Runs and collects the trace into a vector (convenient for bounded
    /// programs; long traces should stream through [`Vm::run_traced`]).
    ///
    /// # Errors
    ///
    /// As for [`Vm::run`].
    pub fn run_collect(&mut self, fuel: u64) -> Result<(Vec<TraceRecord>, RunOutcome), VmError> {
        let mut records = Vec::new();
        let outcome = self.run_traced(fuel, |r| records.push(*r))?;
        Ok((records, outcome))
    }

    fn geti(&self, r: IntReg) -> i64 {
        self.int_regs[r.index() as usize]
    }

    fn seti(&mut self, r: IntReg, v: i64) {
        if !r.is_zero() {
            self.int_regs[r.index() as usize] = v;
        }
    }

    fn getf(&self, r: FpReg) -> f64 {
        self.fp_regs[r.index() as usize]
    }

    fn setf(&mut self, r: FpReg, v: f64) {
        self.fp_regs[r.index() as usize] = v;
    }

    fn effective_addr(&self, base: IntReg, offset: i64) -> u64 {
        self.geti(base).wrapping_add(offset) as u64
    }

    fn jump_to(&mut self, target: u32, pc: u64) -> Result<(), VmError> {
        if (target as usize) < self.program.text().len() {
            self.pc = target;
            Ok(())
        } else {
            Err(VmError::new(
                pc,
                VmErrorKind::BadJump {
                    target: target as u64,
                },
            ))
        }
    }

    /// Executes one instruction; `Ok(Some(reason))` if it ended the program.
    fn step<F>(&mut self, sink: &mut F) -> Result<Option<HaltReason>, VmError>
    where
        F: FnMut(&TraceRecord),
    {
        let pc = self.pc as u64;
        let inst = *self
            .program
            .text()
            .get(self.pc as usize)
            .ok_or(VmError::new(pc, VmErrorKind::BadJump { target: pc }))?;
        self.executed += 1;
        let next_pc = self.pc + 1;
        self.pc = next_pc;

        use Inst::*;
        let fault = |e: VmError| VmError::new(pc, e.kind());

        macro_rules! binop {
            ($rd:expr, $rs:expr, $rt:expr, $op:expr) => {{
                let v = $op(self.geti($rs), self.geti($rt));
                self.seti($rd, v);
                sink(&TraceRecord::compute(
                    pc,
                    inst.class(),
                    &[Loc::from($rs), Loc::from($rt)],
                    Loc::from($rd),
                ));
            }};
        }
        macro_rules! fbinop {
            ($fd:expr, $fs:expr, $ft:expr, $op:expr) => {{
                let v = $op(self.getf($fs), self.getf($ft));
                self.setf($fd, v);
                sink(&TraceRecord::compute(
                    pc,
                    inst.class(),
                    &[Loc::from($fs), Loc::from($ft)],
                    Loc::from($fd),
                ));
            }};
        }
        macro_rules! funop {
            ($fd:expr, $fs:expr, $op:expr) => {{
                let v = $op(self.getf($fs));
                self.setf($fd, v);
                sink(&TraceRecord::compute(
                    pc,
                    inst.class(),
                    &[Loc::from($fs)],
                    Loc::from($fd),
                ));
            }};
        }
        macro_rules! immop {
            ($rt:expr, $rs:expr, $imm:expr, $op:expr) => {{
                let v = $op(self.geti($rs), $imm);
                self.seti($rt, v);
                sink(&TraceRecord::compute(
                    pc,
                    inst.class(),
                    &[Loc::from($rs)],
                    Loc::from($rt),
                ));
            }};
        }
        macro_rules! branch {
            ($rs:expr, $rt:expr, $target:expr, $cond:expr) => {{
                let taken = $cond(self.geti($rs), self.geti($rt));
                sink(&TraceRecord::branch_outcome(
                    pc,
                    &[Loc::from($rs), Loc::from($rt)],
                    taken,
                    u64::from($target),
                ));
                if taken {
                    self.jump_to($target, pc)?;
                }
            }};
        }

        match inst {
            Add { rd, rs, rt } => binop!(rd, rs, rt, |a: i64, b: i64| a.wrapping_add(b)),
            Sub { rd, rs, rt } => binop!(rd, rs, rt, |a: i64, b: i64| a.wrapping_sub(b)),
            And { rd, rs, rt } => binop!(rd, rs, rt, |a, b| a & b),
            Or { rd, rs, rt } => binop!(rd, rs, rt, |a, b| a | b),
            Xor { rd, rs, rt } => binop!(rd, rs, rt, |a, b| a ^ b),
            Nor { rd, rs, rt } => binop!(rd, rs, rt, |a: i64, b: i64| !(a | b)),
            Slt { rd, rs, rt } => binop!(rd, rs, rt, |a, b| i64::from(a < b)),
            Sltu { rd, rs, rt } => {
                binop!(rd, rs, rt, |a: i64, b: i64| i64::from(
                    (a as u64) < (b as u64)
                ))
            }
            Sllv { rd, rs, rt } => {
                binop!(rd, rs, rt, |a: i64, b: i64| a.wrapping_shl(b as u32 & 63))
            }
            Srlv { rd, rs, rt } => binop!(rd, rs, rt, |a: i64, b: i64| ((a as u64)
                .wrapping_shr(b as u32 & 63))
                as i64),
            Mul { rd, rs, rt } => binop!(rd, rs, rt, |a: i64, b: i64| a.wrapping_mul(b)),
            Div { rd, rs, rt } => {
                let b = self.geti(rt);
                if b == 0 {
                    return Err(VmError::new(pc, VmErrorKind::DivideByZero));
                }
                binop!(rd, rs, rt, |a: i64, b: i64| a.wrapping_div(b));
            }
            Rem { rd, rs, rt } => {
                let b = self.geti(rt);
                if b == 0 {
                    return Err(VmError::new(pc, VmErrorKind::DivideByZero));
                }
                binop!(rd, rs, rt, |a: i64, b: i64| a.wrapping_rem(b));
            }
            Sll { rd, rs, shamt } => {
                immop!(rd, rs, shamt as i64, |a: i64, s: i64| a
                    .wrapping_shl(s as u32))
            }
            Srl { rd, rs, shamt } => immop!(rd, rs, shamt as i64, |a: i64, s: i64| ((a as u64)
                .wrapping_shr(s as u32))
                as i64),
            Sra { rd, rs, shamt } => {
                immop!(rd, rs, shamt as i64, |a: i64, s: i64| a
                    .wrapping_shr(s as u32))
            }
            Addi { rt, rs, imm } => immop!(rt, rs, imm, |a: i64, b: i64| a.wrapping_add(b)),
            Andi { rt, rs, imm } => immop!(rt, rs, imm, |a, b| a & b),
            Ori { rt, rs, imm } => immop!(rt, rs, imm, |a, b| a | b),
            Xori { rt, rs, imm } => immop!(rt, rs, imm, |a, b| a ^ b),
            Slti { rt, rs, imm } => immop!(rt, rs, imm, |a, b| i64::from(a < b)),
            Li { rd, imm } => {
                self.seti(rd, imm);
                sink(&TraceRecord::compute(
                    pc,
                    OpClass::IntAlu,
                    &[],
                    Loc::from(rd),
                ));
            }
            Lw { rt, base, offset } => {
                let addr = self.effective_addr(base, offset);
                let word = self.mem.read(addr).map_err(fault)?;
                self.seti(rt, word as i64);
                sink(&TraceRecord::load(
                    pc,
                    addr,
                    Some(Loc::from(base)),
                    Loc::from(rt),
                ));
            }
            Sw { rt, base, offset } => {
                let addr = self.effective_addr(base, offset);
                self.mem.write(addr, self.geti(rt) as u64).map_err(fault)?;
                sink(&TraceRecord::store(
                    pc,
                    addr,
                    Loc::from(rt),
                    Some(Loc::from(base)),
                ));
            }
            Flw { ft, base, offset } => {
                let addr = self.effective_addr(base, offset);
                let word = self.mem.read(addr).map_err(fault)?;
                self.setf(ft, f64::from_bits(word));
                sink(&TraceRecord::load(
                    pc,
                    addr,
                    Some(Loc::from(base)),
                    Loc::from(ft),
                ));
            }
            Fsw { ft, base, offset } => {
                let addr = self.effective_addr(base, offset);
                self.mem
                    .write(addr, self.getf(ft).to_bits())
                    .map_err(fault)?;
                sink(&TraceRecord::store(
                    pc,
                    addr,
                    Loc::from(ft),
                    Some(Loc::from(base)),
                ));
            }
            Fadd { fd, fs, ft } => fbinop!(fd, fs, ft, |a: f64, b: f64| a + b),
            Fsub { fd, fs, ft } => fbinop!(fd, fs, ft, |a: f64, b: f64| a - b),
            Fmul { fd, fs, ft } => fbinop!(fd, fs, ft, |a: f64, b: f64| a * b),
            Fdiv { fd, fs, ft } => fbinop!(fd, fs, ft, |a: f64, b: f64| a / b),
            Fsqrt { fd, fs } => funop!(fd, fs, f64::sqrt),
            Fneg { fd, fs } => funop!(fd, fs, |a: f64| -a),
            Fabs { fd, fs } => funop!(fd, fs, f64::abs),
            Fmov { fd, fs } => funop!(fd, fs, |a| a),
            Fclt { rd, fs, ft } => {
                let v = i64::from(self.getf(fs) < self.getf(ft));
                self.seti(rd, v);
                sink(&TraceRecord::compute(
                    pc,
                    OpClass::FpAdd,
                    &[Loc::from(fs), Loc::from(ft)],
                    Loc::from(rd),
                ));
            }
            Fcle { rd, fs, ft } => {
                let v = i64::from(self.getf(fs) <= self.getf(ft));
                self.seti(rd, v);
                sink(&TraceRecord::compute(
                    pc,
                    OpClass::FpAdd,
                    &[Loc::from(fs), Loc::from(ft)],
                    Loc::from(rd),
                ));
            }
            Fceq { rd, fs, ft } => {
                let v = i64::from(self.getf(fs) == self.getf(ft));
                self.seti(rd, v);
                sink(&TraceRecord::compute(
                    pc,
                    OpClass::FpAdd,
                    &[Loc::from(fs), Loc::from(ft)],
                    Loc::from(rd),
                ));
            }
            Cvtif { fd, rs } => {
                let v = self.geti(rs) as f64;
                self.setf(fd, v);
                sink(&TraceRecord::compute(
                    pc,
                    OpClass::FpAdd,
                    &[Loc::from(rs)],
                    Loc::from(fd),
                ));
            }
            Cvtfi { rd, fs } => {
                let v = self.getf(fs) as i64;
                self.seti(rd, v);
                sink(&TraceRecord::compute(
                    pc,
                    OpClass::FpAdd,
                    &[Loc::from(fs)],
                    Loc::from(rd),
                ));
            }
            Beq { rs, rt, target } => branch!(rs, rt, target, |a, b| a == b),
            Bne { rs, rt, target } => branch!(rs, rt, target, |a, b| a != b),
            Blt { rs, rt, target } => branch!(rs, rt, target, |a, b| a < b),
            Bge { rs, rt, target } => branch!(rs, rt, target, |a, b| a >= b),
            J { target } => {
                sink(&TraceRecord::jump(pc, &[]));
                self.jump_to(target, pc)?;
            }
            Jal { target } => {
                // The link write happens but is not traced (jumps are never
                // placed in the DDG); see the crate docs.
                self.seti(abi::RA, next_pc as i64);
                sink(&TraceRecord::jump(pc, &[]));
                self.jump_to(target, pc)?;
            }
            Jr { rs } => {
                let target = self.geti(rs);
                sink(&TraceRecord::jump(pc, &[Loc::from(rs)]));
                if target < 0 || target > u32::MAX as i64 {
                    return Err(VmError::new(
                        pc,
                        VmErrorKind::BadJump {
                            target: target as u64,
                        },
                    ));
                }
                self.jump_to(target as u32, pc)?;
            }
            Syscall => return self.do_syscall(pc, sink),
            Nop => {
                sink(&TraceRecord::new(pc, OpClass::Nop, &[], None));
            }
            Halt => {
                // Ends the run; not part of the trace model.
                return Ok(Some(HaltReason::Halt));
            }
        }
        Ok(None)
    }

    fn do_syscall<F>(&mut self, pc: u64, sink: &mut F) -> Result<Option<HaltReason>, VmError>
    where
        F: FnMut(&TraceRecord),
    {
        let number = self.geti(abi::V0);
        let call = Syscall::from_number(number)
            .ok_or(VmError::new(pc, VmErrorKind::UnknownSyscall { number }))?;
        let v0 = Loc::from(abi::V0);
        let a0 = Loc::from(abi::A0);
        let f0 = Loc::fp(0);
        match call {
            Syscall::PrintInt => {
                let v = self.geti(abi::A0);
                self.output.push_str(&v.to_string());
                self.output.push('\n');
                sink(&TraceRecord::syscall(pc, &[v0, a0], None));
            }
            Syscall::PrintFloat => {
                let v = self.fp_regs[0];
                self.output.push_str(&format!("{v}"));
                self.output.push('\n');
                sink(&TraceRecord::syscall(pc, &[v0, f0], None));
            }
            Syscall::PrintChar => {
                let v = self.geti(abi::A0);
                self.output
                    .push(char::from_u32(v as u32).unwrap_or('\u{FFFD}'));
                sink(&TraceRecord::syscall(pc, &[v0, a0], None));
            }
            Syscall::ReadInt => {
                let v = self
                    .input
                    .pop_front()
                    .ok_or(VmError::new(pc, VmErrorKind::InputExhausted))?;
                self.seti(abi::V0, v);
                sink(&TraceRecord::syscall(pc, &[v0], Some(v0)));
            }
            Syscall::Sbrk => {
                let words = self.geti(abi::A0).max(0) as u64;
                let old = self.brk;
                self.brk += words;
                self.seti(abi::V0, old as i64);
                sink(&TraceRecord::syscall(pc, &[v0, a0], Some(v0)));
            }
            Syscall::Exit => {
                let code = self.geti(abi::A0);
                sink(&TraceRecord::syscall(pc, &[v0, a0], None));
                return Ok(Some(HaltReason::Exit(code)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;

    fn run_program(src: &str) -> (Vm, RunOutcome) {
        let program = assemble(src).expect("test program must assemble");
        let mut vm = Vm::new(program);
        let outcome = vm.run(1_000_000).expect("test program must not fault");
        (vm, outcome)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (vm, outcome) = run_program(".text\nmain:\n li r4, 21\n add r5, r4, r4\n halt\n");
        assert_eq!(outcome.reason(), HaltReason::Halt);
        assert_eq!(vm.int_reg(IntReg::new(5).unwrap()), 42);
        assert_eq!(outcome.executed(), 3);
    }

    #[test]
    fn factorial_loop() {
        let (vm, _) = run_program(
            "
            .text
        main:
            li r4, 6      # n
            li r5, 1      # acc
        loop:
            mul r5, r5, r4
            addi r4, r4, -1
            bgt r4, r0, loop
            halt
        ",
        );
        assert_eq!(vm.int_reg(IntReg::new(5).unwrap()), 720);
    }

    #[test]
    fn memory_and_data_segment() {
        let (vm, _) = run_program(
            "
            .data
        xs: .word 10, 20, 30
            .text
        main:
            la r8, xs
            lw r9, 1(r8)
            addi r9, r9, 5
            sw r9, 2(r8)
            halt
        ",
        );
        let base = vm.program().symbol("xs").unwrap();
        assert_eq!(vm.mem_word(base + 2).unwrap(), 25);
    }

    #[test]
    fn stack_push_pop() {
        let (vm, _) = run_program(
            "
            .text
        main:
            li r8, 77
            addi sp, sp, -1
            sw r8, 0(sp)
            lw r9, 0(sp)
            addi sp, sp, 1
            halt
        ",
        );
        assert_eq!(vm.int_reg(IntReg::new(9).unwrap()), 77);
        assert_eq!(vm.int_reg(abi::SP), STACK_TOP as i64);
    }

    #[test]
    fn call_and_return() {
        let (vm, _) = run_program(
            "
            .text
        main:
            li r4, 5
            jal double
            mv r10, r2
            halt
        double:
            add r2, r4, r4
            jr ra
        ",
        );
        assert_eq!(vm.int_reg(IntReg::new(10).unwrap()), 10);
    }

    #[test]
    fn floating_point_pipeline() {
        let (vm, _) = run_program(
            "
            .data
        x:  .float 2.0
            .text
        main:
            la r8, x
            flw f1, 0(r8)
            fmul f2, f1, f1
            fsqrt f3, f2
            fclt r9, f1, f2
            halt
        ",
        );
        assert_eq!(vm.fp_reg(FpReg::new(2).unwrap()), 4.0);
        assert_eq!(vm.fp_reg(FpReg::new(3).unwrap()), 2.0);
        assert_eq!(vm.int_reg(IntReg::new(9).unwrap()), 1);
    }

    #[test]
    fn print_and_read_syscalls() {
        let program = assemble(
            "
            .text
        main:
            li r2, 4      # read_int
            syscall
            mv r4, r2
            li r2, 1      # print_int
            syscall
            li r2, 3      # print_char
            li r4, 33
            syscall
            halt
        ",
        )
        .unwrap();
        let mut vm = Vm::new(program);
        vm.push_input(123);
        vm.run(100).unwrap();
        assert_eq!(vm.output(), "123\n!");
    }

    #[test]
    fn sbrk_grows_heap() {
        let (vm, _) = run_program(
            "
            .data
        x: .word 1
            .text
        main:
            li r2, 5
            li r4, 10
            syscall
            mv r8, r2     # old brk
            li r2, 5
            li r4, 0
            syscall
            mv r9, r2     # new brk
            halt
        ",
        );
        let r8 = vm.int_reg(IntReg::new(8).unwrap());
        let r9 = vm.int_reg(IntReg::new(9).unwrap());
        assert_eq!(r9 - r8, 10);
        assert_eq!(r8 as u64, vm.program().data_end());
    }

    #[test]
    fn exit_syscall_reports_code() {
        let (_, outcome) = run_program(".text\nmain:\n li r2, 6\n li r4, 3\n syscall\n halt\n");
        assert_eq!(outcome.reason(), HaltReason::Exit(3));
    }

    #[test]
    fn fuel_exhaustion_is_not_an_error() {
        let program = assemble(".text\nmain:\n j main\n").unwrap();
        let mut vm = Vm::new(program);
        let outcome = vm.run(1000).unwrap();
        assert_eq!(outcome.reason(), HaltReason::FuelExhausted);
        assert_eq!(outcome.executed(), 1000);
        // A second run continues from where it stopped.
        let outcome = vm.run(500).unwrap();
        assert_eq!(outcome.executed(), 500);
        assert_eq!(vm.executed(), 1500);
    }

    #[test]
    fn hard_fuel_limit_is_a_typed_fault() {
        let program = assemble(".text\nmain:\n j main\n").unwrap();
        let mut vm = Vm::new(program);
        vm.set_fuel_limit(Some(100));
        let err = vm.run(DEFAULT_FUEL).unwrap_err();
        assert_eq!(err.kind(), VmErrorKind::FuelExhausted { limit: 100 });
        assert_eq!(vm.executed(), 100);
        // The limit spans runs: another run faults immediately.
        assert!(vm.run(10).is_err());
        // Raising the limit lets execution continue.
        vm.set_fuel_limit(Some(150));
        assert_eq!(vm.run(DEFAULT_FUEL).unwrap_err().pc(), 0);
        assert_eq!(vm.executed(), 150);
    }

    #[test]
    fn fuel_limit_does_not_fault_terminating_programs() {
        let program = assemble(".text\nmain:\n li r4, 1\n halt\n").unwrap();
        let mut vm = Vm::new(program);
        vm.set_fuel_limit(Some(1000));
        assert!(vm.run(DEFAULT_FUEL).unwrap().halted());
        assert_eq!(vm.fuel_limit(), Some(1000));
    }

    #[test]
    fn run_after_halt_is_a_no_op() {
        let program = assemble(".text\nmain:\n halt\n").unwrap();
        let mut vm = Vm::new(program);
        assert!(vm.run(10).unwrap().halted());
        let again = vm.run(10).unwrap();
        assert_eq!(again.executed(), 0);
        assert!(again.halted());
    }

    #[test]
    fn divide_by_zero_faults_with_pc() {
        let program = assemble(".text\nmain:\n li r4, 1\n div r5, r4, r0\n halt\n").unwrap();
        let err = Vm::new(program).run(10).unwrap_err();
        assert_eq!(err.kind(), VmErrorKind::DivideByZero);
        assert_eq!(err.pc(), 1);
    }

    #[test]
    fn null_pointer_faults() {
        let program = assemble(".text\nmain:\n lw r4, 0(r0)\n halt\n").unwrap();
        let err = Vm::new(program).run(10).unwrap_err();
        assert!(matches!(err.kind(), VmErrorKind::MemoryFault { addr: 0 }));
    }

    #[test]
    fn falling_off_the_end_faults() {
        let program = assemble(".text\nmain:\n nop\n").unwrap();
        let err = Vm::new(program).run(10).unwrap_err();
        assert!(matches!(err.kind(), VmErrorKind::BadJump { .. }));
    }

    #[test]
    fn jr_to_garbage_faults() {
        let program = assemble(".text\nmain:\n li r8, -5\n jr r8\n halt\n").unwrap();
        let err = Vm::new(program).run(10).unwrap_err();
        assert!(matches!(err.kind(), VmErrorKind::BadJump { .. }));
    }

    #[test]
    fn unknown_syscall_faults() {
        let program = assemble(".text\nmain:\n li r2, 99\n syscall\n halt\n").unwrap();
        let err = Vm::new(program).run(10).unwrap_err();
        assert!(matches!(
            err.kind(),
            VmErrorKind::UnknownSyscall { number: 99 }
        ));
    }

    #[test]
    fn read_without_input_faults() {
        let program = assemble(".text\nmain:\n li r2, 4\n syscall\n halt\n").unwrap();
        let err = Vm::new(program).run(10).unwrap_err();
        assert_eq!(err.kind(), VmErrorKind::InputExhausted);
    }

    #[test]
    fn trace_matches_execution() {
        let program = assemble(
            "
            .data
        xs: .word 5
            .text
        main:
            la r8, xs
            lw r9, 0(r8)
            addi r9, r9, 1
            sw r9, 0(r8)
            beq r9, r9, done
            nop
        done:
            halt
        ",
        )
        .unwrap();
        let mut vm = Vm::new(program);
        let (records, outcome) = vm.run_collect(100).unwrap();
        // la, lw, addi, sw, beq (taken; halt not traced).
        assert_eq!(outcome.executed() as usize, records.len() + 1);
        assert_eq!(records.len(), 5);
        assert_eq!(records[1].class(), OpClass::Load);
        let xs = vm.program().symbol("xs").unwrap();
        assert_eq!(records[1].mem_addr(), Some(xs));
        assert_eq!(records[3].class(), OpClass::Store);
        assert_eq!(records[3].mem_addr(), Some(xs));
        assert_eq!(records[4].class(), OpClass::Branch);
    }

    #[test]
    fn traces_are_deterministic() {
        let src = "
            .text
        main:
            li r4, 100
        loop:
            addi r4, r4, -1
            bne r4, r0, loop
            halt
        ";
        let t1 = Vm::new(assemble(src).unwrap())
            .run_collect(10_000)
            .unwrap()
            .0;
        let t2 = Vm::new(assemble(src).unwrap())
            .run_collect(10_000)
            .unwrap()
            .0;
        assert_eq!(t1, t2);
    }

    #[test]
    fn segment_map_reflects_program_layout() {
        let program = assemble(".data\nx: .word 1, 2\n.text\nmain:\n halt\n").unwrap();
        let data_end = program.data_end();
        let vm = Vm::new(program);
        let map = vm.segment_map();
        use paragraph_trace::Segment;
        assert_eq!(map.classify(data_end - 1), Segment::Data);
        assert_eq!(map.classify(data_end), Segment::Heap);
        assert_eq!(map.classify(STACK_TOP - 4), Segment::Stack);
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let program = assemble(
            ".data\nx: .word 5\n.text\nmain:\n la r8, x\n lw r9, 0(r8)\n addi r9, r9, 1\n sw r9, 0(r8)\n halt\n",
        )
        .unwrap();
        let mut vm = Vm::new(program);
        vm.run(100).unwrap();
        let x = vm.program().symbol("x").unwrap();
        assert_eq!(vm.mem_word(x).unwrap(), 6);
        vm.reset();
        assert_eq!(vm.mem_word(x).unwrap(), 5);
        assert_eq!(vm.executed(), 0);
        assert_eq!(vm.int_reg(abi::SP), STACK_TOP as i64);
        // And it runs again identically.
        let outcome = vm.run(100).unwrap();
        assert!(outcome.halted());
        assert_eq!(vm.mem_word(x).unwrap(), 6);
    }

    #[test]
    fn zero_register_stays_zero() {
        let (vm, _) = run_program(".text\nmain:\n li r0, 99\n addi r0, r0, 5\n halt\n");
        assert_eq!(vm.int_reg(IntReg::ZERO), 0);
    }
}

//! The system-call menu.

use std::fmt;

/// System calls recognized by the VM.
///
/// The call number is taken from `r2` (`v0`), integer arguments from `r4`
/// (`a0`), floating-point arguments from `f0`; integer results are returned
/// in `r2`.
///
/// # Examples
///
/// ```
/// use paragraph_vm::Syscall;
///
/// assert_eq!(Syscall::from_number(1), Some(Syscall::PrintInt));
/// assert_eq!(Syscall::PrintInt.number(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syscall {
    /// `1`: print the integer in `r4`, followed by a newline.
    PrintInt,
    /// `2`: print the float in `f0`, followed by a newline.
    PrintFloat,
    /// `3`: print the character whose code point is in `r4`.
    PrintChar,
    /// `4`: pop the next integer from the input queue into `r2`.
    ReadInt,
    /// `5`: grow the heap by `r4` words; the old break is returned in `r2`.
    Sbrk,
    /// `6`: terminate the program with the exit code in `r4`.
    Exit,
}

impl Syscall {
    /// Decodes a call number.
    pub fn from_number(number: i64) -> Option<Syscall> {
        Some(match number {
            1 => Syscall::PrintInt,
            2 => Syscall::PrintFloat,
            3 => Syscall::PrintChar,
            4 => Syscall::ReadInt,
            5 => Syscall::Sbrk,
            6 => Syscall::Exit,
            _ => return None,
        })
    }

    /// The call number placed in `r2` to invoke this call.
    pub fn number(self) -> i64 {
        match self {
            Syscall::PrintInt => 1,
            Syscall::PrintFloat => 2,
            Syscall::PrintChar => 3,
            Syscall::ReadInt => 4,
            Syscall::Sbrk => 5,
            Syscall::Exit => 6,
        }
    }

    /// Whether this call writes a result register (`r2`).
    pub fn returns_value(self) -> bool {
        matches!(self, Syscall::ReadInt | Syscall::Sbrk)
    }
}

impl fmt::Display for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Syscall::PrintInt => "print_int",
            Syscall::PrintFloat => "print_float",
            Syscall::PrintChar => "print_char",
            Syscall::ReadInt => "read_int",
            Syscall::Sbrk => "sbrk",
            Syscall::Exit => "exit",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for n in 1..=6 {
            let call = Syscall::from_number(n).unwrap();
            assert_eq!(call.number(), n);
        }
        assert_eq!(Syscall::from_number(0), None);
        assert_eq!(Syscall::from_number(7), None);
        assert_eq!(Syscall::from_number(-1), None);
    }

    #[test]
    fn only_input_calls_return_values() {
        assert!(Syscall::ReadInt.returns_value());
        assert!(Syscall::Sbrk.returns_value());
        assert!(!Syscall::PrintInt.returns_value());
        assert!(!Syscall::Exit.returns_value());
    }
}

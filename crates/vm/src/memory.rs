//! Sparse, word-addressed memory.

use crate::error::{VmError, VmErrorKind};
use paragraph_trace::SegmentMap;
use std::collections::HashMap;

/// Words per page of the sparse memory.
const PAGE_WORDS: u64 = 1024;

/// First valid word address: the null page below it always faults, so stray
/// null/uninitialized pointers are caught instead of silently reading zeros.
pub const NULL_PAGE_END: u64 = 0x1000;

/// Initial stack pointer (one past the highest stack word).
pub const STACK_TOP: u64 = 0x4000_0000;

/// Lowest address classified as stack by the segment map. The region between
/// the heap and this floor is unused guard space.
pub const STACK_REGION_FLOOR: u64 = 0x3000_0000;

/// Highest addressable word (exclusive).
const ADDR_LIMIT: u64 = 1 << 44;

/// Sparse, paged, word-addressed memory.
///
/// Each word holds 64 raw bits; integer instructions interpret them as
/// `i64`, floating-point instructions as IEEE-754 `f64` bits. Reads of
/// never-written words in the valid address range return 0 (the paper's
/// model: DATA-segment values simply pre-exist).
///
/// # Examples
///
/// ```
/// use paragraph_vm::Memory;
///
/// let mut mem = Memory::new();
/// mem.write(0x2000, 7)?;
/// assert_eq!(mem.read(0x2000)?, 7);
/// assert_eq!(mem.read(0x2001)?, 0);
/// assert!(mem.read(0).is_err()); // null page
/// # Ok::<(), paragraph_vm::VmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64]>>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn check(addr: u64) -> Result<(), VmError> {
        if !(NULL_PAGE_END..ADDR_LIMIT).contains(&addr) {
            // The faulting pc is filled in by the machine.
            Err(VmError::new(0, VmErrorKind::MemoryFault { addr }))
        } else {
            Ok(())
        }
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on the null page and beyond the address-space limit.
    pub fn read(&self, addr: u64) -> Result<u64, VmError> {
        Self::check(addr)?;
        let page = addr / PAGE_WORDS;
        Ok(self
            .pages
            .get(&page)
            .map_or(0, |p| p[(addr % PAGE_WORDS) as usize]))
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on the null page and beyond the address-space limit.
    pub fn write(&mut self, addr: u64, value: u64) -> Result<(), VmError> {
        Self::check(addr)?;
        let page = addr / PAGE_WORDS;
        let page = self
            .pages
            .entry(page)
            .or_insert_with(|| vec![0u64; PAGE_WORDS as usize].into_boxed_slice());
        page[(addr % PAGE_WORDS) as usize] = value;
        Ok(())
    }

    /// Number of pages currently materialized (a proxy for the VM's
    /// footprint).
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }

    /// Builds the segment map for a program whose heap starts at
    /// `heap_base`: data below `heap_base`, stack at and above
    /// [`STACK_REGION_FLOOR`].
    pub fn segment_map(heap_base: u64) -> SegmentMap {
        SegmentMap::new(heap_base.min(STACK_REGION_FLOOR), STACK_REGION_FLOOR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_trace::Segment;

    #[test]
    fn unwritten_words_read_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read(0x2000).unwrap(), 0);
    }

    #[test]
    fn writes_persist_across_pages() {
        let mut mem = Memory::new();
        for i in 0..5u64 {
            mem.write(0x2000 + i * PAGE_WORDS, i).unwrap();
        }
        for i in 0..5u64 {
            assert_eq!(mem.read(0x2000 + i * PAGE_WORDS).unwrap(), i);
        }
        assert_eq!(mem.pages_touched(), 5);
    }

    #[test]
    fn null_page_faults() {
        let mut mem = Memory::new();
        assert!(mem.read(0).is_err());
        assert!(mem.read(NULL_PAGE_END - 1).is_err());
        assert!(mem.write(5, 1).is_err());
        assert!(mem.read(NULL_PAGE_END).is_ok());
    }

    #[test]
    fn address_limit_faults() {
        let mem = Memory::new();
        assert!(mem.read(ADDR_LIMIT).is_err());
        assert!(mem.read(u64::MAX).is_err());
    }

    #[test]
    fn segment_map_layout() {
        let map = Memory::segment_map(0x5000);
        assert_eq!(map.classify(0x2000), Segment::Data);
        assert_eq!(map.classify(0x6000), Segment::Heap);
        assert_eq!(map.classify(STACK_TOP - 1), Segment::Stack);
        assert_eq!(map.classify(STACK_REGION_FLOOR), Segment::Stack);
    }
}

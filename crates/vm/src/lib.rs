//! The interpreting virtual machine and tracer for the Paragraph toolkit.
//!
//! The paper captured serial execution traces of SPEC89 binaries with Pixie
//! on DECstation (MIPS) workstations. This crate is the reproduction's
//! equivalent substrate: it executes assembled [`Program`](paragraph_asm::Program)s
//! and emits one [`TraceRecord`](paragraph_trace::TraceRecord) per dynamic
//! instruction, which feeds directly into the `paragraph-core` analyzers.
//!
//! # Machine model
//!
//! * 32 integer registers (`r0` hardwired to zero) holding `i64`, and 32
//!   floating-point registers holding `f64`.
//! * Word-addressed sparse memory; each word is 64 bits (integers stored
//!   two's complement, floats as IEEE-754 bits). The layout is
//!   `[null page | data | heap →   ...   ← stack]`, with the boundaries
//!   exposed as a [`SegmentMap`](paragraph_trace::SegmentMap) so the
//!   analyzer's *Rename Stack* / *Rename Data* switches can classify
//!   addresses exactly as the paper does.
//! * System calls take their call number in `r2` (`v0`) and arguments in
//!   `r4`/`f0`; see [`Syscall`] for the menu. Input is provided up front via
//!   [`Vm::push_input`]; output accumulates in [`Vm::output`]. Everything is
//!   deterministic.
//! * Execution is fuel-limited: [`Vm::run`] stops after a configurable
//!   number of instructions, mirroring the paper's truncation of traces at
//!   100M instructions ("at most 100,000,000 instructions were traced due to
//!   time restrictions").
//!
//! Following the paper, `jal`'s link-register write is *not* reported in the
//! trace (jumps and branches are never placed in the DDG), though the VM of
//! course performs it; `jr` consequently reads a value the analyzer treats
//! as preexisting.
//!
//! # Examples
//!
//! ```
//! use paragraph_asm::assemble;
//! use paragraph_vm::Vm;
//!
//! let program = assemble("
//!     .text
//! main:
//!     li r2, 1        # print_int
//!     li r4, 42
//!     syscall
//!     halt
//! ")?;
//! let mut vm = Vm::new(program);
//! let outcome = vm.run(1_000)?;
//! assert!(outcome.halted());
//! assert_eq!(vm.output(), "42\n");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod machine;
mod memory;
mod syscall;

pub use error::{VmError, VmErrorKind};
pub use machine::{HaltReason, RunOutcome, Vm, DEFAULT_FUEL};
pub use memory::{Memory, NULL_PAGE_END, STACK_REGION_FLOOR, STACK_TOP};
pub use syscall::Syscall;

//! Differential and property tests of the interpreter: instruction
//! semantics are checked against Rust's own arithmetic on arbitrary
//! operands, and structural VM invariants are exercised with generated
//! programs.

use paragraph_asm::assemble;
use paragraph_isa::IntReg;
use paragraph_vm::Vm;
use proptest::prelude::*;

/// Runs a fragment with `r8 = a`, `r9 = b` prepared, returning `r10`.
fn eval_binop(op: &str, a: i64, b: i64) -> i64 {
    let source =
        format!(".text\nmain:\n    li r8, {a}\n    li r9, {b}\n    {op} r10, r8, r9\n    halt\n");
    let program = assemble(&source).expect("fragment assembles");
    let mut vm = Vm::new(program);
    vm.run(10).expect("fragment runs");
    vm.int_reg(IntReg::new(10).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_matches_wrapping_add(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval_binop("add", a, b), a.wrapping_add(b));
    }

    #[test]
    fn sub_matches_wrapping_sub(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval_binop("sub", a, b), a.wrapping_sub(b));
    }

    #[test]
    fn mul_matches_wrapping_mul(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval_binop("mul", a, b), a.wrapping_mul(b));
    }

    #[test]
    fn div_and_rem_match_rust(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |&b| b != 0)) {
        prop_assert_eq!(eval_binop("div", a, b), a.wrapping_div(b));
        prop_assert_eq!(eval_binop("rem", a, b), a.wrapping_rem(b));
    }

    #[test]
    fn logic_ops_match(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval_binop("and", a, b), a & b);
        prop_assert_eq!(eval_binop("or", a, b), a | b);
        prop_assert_eq!(eval_binop("xor", a, b), a ^ b);
        prop_assert_eq!(eval_binop("nor", a, b), !(a | b));
    }

    #[test]
    fn comparisons_match(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval_binop("slt", a, b), i64::from(a < b));
        prop_assert_eq!(eval_binop("sltu", a, b), i64::from((a as u64) < (b as u64)));
    }

    #[test]
    fn variable_shifts_mask_the_amount(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval_binop("sllv", a, b), a.wrapping_shl(b as u32 & 63));
        prop_assert_eq!(
            eval_binop("srlv", a, b),
            ((a as u64).wrapping_shr(b as u32 & 63)) as i64
        );
    }

    #[test]
    fn immediate_shifts_match(a in any::<i64>(), sh in 0u8..64) {
        let source = format!(
            ".text\nmain:\n    li r8, {a}\n    sll r10, r8, {sh}\n    srl r11, r8, {sh}\n    sra r12, r8, {sh}\n    halt\n"
        );
        let mut vm = Vm::new(assemble(&source).unwrap());
        vm.run(10).unwrap();
        prop_assert_eq!(vm.int_reg(IntReg::new(10).unwrap()), a.wrapping_shl(sh as u32));
        prop_assert_eq!(
            vm.int_reg(IntReg::new(11).unwrap()),
            ((a as u64).wrapping_shr(sh as u32)) as i64
        );
        prop_assert_eq!(vm.int_reg(IntReg::new(12).unwrap()), a.wrapping_shr(sh as u32));
    }

    /// Memory is a function: the last store to an address wins, reads do
    /// not disturb it, distinct addresses do not interfere.
    #[test]
    fn memory_is_last_writer_wins(
        writes in proptest::collection::vec((0u64..64, any::<i64>()), 1..40)
    ) {
        let mut source = String::from(".text\nmain:\n    li r8, 0x2000\n");
        for (offset, value) in &writes {
            source.push_str(&format!("    li r9, {value}\n    sw r9, {offset}(r8)\n"));
        }
        source.push_str("    halt\n");
        let mut vm = Vm::new(assemble(&source).unwrap());
        vm.run(1_000).unwrap();
        // Compute the expected final memory image.
        let mut image = std::collections::HashMap::new();
        for (offset, value) in &writes {
            image.insert(*offset, *value);
        }
        for (offset, value) in image {
            prop_assert_eq!(vm.mem_word(0x2000 + offset).unwrap(), value as u64);
        }
    }

    /// Float round trips through memory bit-exactly.
    #[test]
    fn float_store_load_is_bit_exact(v in any::<f64>()) {
        // Drive the value in through the data segment.
        let source = format!(
            ".data\nx: .float {v:?}\n.text\nmain:\n    la r8, x\n    flw f1, 0(r8)\n    fsw f1, 8(r8)\n    flw f2, 8(r8)\n    halt\n"
        );
        let mut vm = Vm::new(assemble(&source).unwrap());
        vm.run(10).unwrap();
        let got = vm.fp_reg(paragraph_isa::FpReg::new(2).unwrap());
        if v.is_nan() {
            prop_assert!(got.is_nan());
        } else {
            prop_assert_eq!(got, v);
        }
    }

    /// The trace length always equals executed instructions minus the
    /// untraced halt, for arbitrary straight-line programs.
    #[test]
    fn trace_length_matches_execution(n in 1usize..64) {
        let mut source = String::from(".text\nmain:\n");
        for i in 0..n {
            source.push_str(&format!("    li r{}, {}\n", 1 + (i % 28), i));
        }
        source.push_str("    halt\n");
        let mut vm = Vm::new(assemble(&source).unwrap());
        let (trace, outcome) = vm.run_collect(10_000).unwrap();
        prop_assert_eq!(trace.len() + 1, outcome.executed() as usize);
        prop_assert_eq!(trace.len(), n);
    }
}

//! Shared harness for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary in `src/bin/`:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — instruction class operation times |
//! | `table2` | Table 2 — benchmark inventory and trace lengths |
//! | `table3` | Table 3 — dataflow limit (conservative vs. optimistic syscalls) |
//! | `table4` | Table 4 — available parallelism under renaming conditions |
//! | `fig7`   | Figure 7 — parallelism profiles (CSV series + ASCII plots) |
//! | `fig8`   | Figure 8 — window size vs. percent of available parallelism |
//! | `ablation` | extra studies: latency model, firewalls, functional units |
//! | `branch_study` | extension — branch policies from serial fetch to perfect |
//! | `alias_study` | extension — perfect vs. no memory disambiguation |
//! | `machine_study` | extension — named machine generations, scalar → dataflow |
//! | `lifetime_study` | §2.3 — value lifetime and sharing distributions |
//! | `storage_study` | §2.3 — storage occupancy of the dataflow execution |
//! | `phase_study` | the paper's open question — per-phase parallelism |
//! | `seed_study` | reproduction methodology — input-seed sensitivity |
//! | `growth_study` | parallelism accumulation vs. trace length |
//! | `window_renaming_study` | window × renaming interaction |
//!
//! Run them with `cargo run --release -p paragraph-bench --bin table3`.
//! Environment knobs:
//!
//! * `PARAGRAPH_FUEL` — dynamic-instruction cap per run (default 100M, the
//!   paper's trace cap; the default workloads run to completion well below
//!   it).
//! * `PARAGRAPH_SCALE` — percentage applied to every workload's default
//!   problem size (e.g. `50` halves them; useful for quick smoke runs).
//! * `PARAGRAPH_OUT` — directory for CSV artifacts (default `results`).
//!
//! The `benches/` directory holds Criterion performance benchmarks of the
//! toolkit itself (analyzer and VM throughput), not paper experiments.

use paragraph_core::{analyze_refs, AnalysisConfig, AnalysisReport, LiveWell};
use paragraph_trace::{SegmentMap, TraceRecord};
use paragraph_vm::RunOutcome;
use paragraph_workloads::{Workload, WorkloadId};
use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub mod arena;
pub mod scheduler;
pub mod supervisor;

pub use arena::{ArenaStats, ArenaTrace, TraceArena};
pub use scheduler::{
    run_sweep, CellMetrics, CellOutcome, CellResult, SweepCell, SweepOptions, SweepOutcome,
};
pub use supervisor::{CellError, CellStatus, FaultSpec};

/// Records between harness checkpoints in [`Study::measure_restartable`].
pub const CHECKPOINT_EVERY: u64 = 1_000_000;

/// Study-wide settings, read from the environment.
#[derive(Debug, Clone)]
pub struct Study {
    fuel: u64,
    scale_percent: u32,
    out_dir: PathBuf,
    size_override: Option<u32>,
    seed_override: Option<u64>,
}

impl Study {
    /// Reads `PARAGRAPH_FUEL`, `PARAGRAPH_SCALE` and `PARAGRAPH_OUT`.
    pub fn from_env() -> Study {
        let fuel = std::env::var("PARAGRAPH_FUEL")
            .ok()
            .and_then(|v| v.replace('_', "").parse().ok())
            .unwrap_or(paragraph_vm::DEFAULT_FUEL);
        let scale_percent = std::env::var("PARAGRAPH_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100)
            .max(1);
        let out_dir = std::env::var("PARAGRAPH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        Study::new(fuel, scale_percent, out_dir)
    }

    /// Builds a study with explicit settings (the CLI front end parses its
    /// own flags instead of the environment).
    pub fn new(fuel: u64, scale_percent: u32, out_dir: PathBuf) -> Study {
        Study {
            fuel,
            scale_percent: scale_percent.max(1),
            out_dir,
            size_override: None,
            seed_override: None,
        }
    }

    /// Forces every workload to problem size `size` (the CLI's `--size`),
    /// instead of the scaled per-workload default.
    #[must_use]
    pub fn with_size_override(mut self, size: Option<u32>) -> Study {
        self.size_override = size;
        self
    }

    /// Forces every workload's input seed (the CLI's `--seed`).
    #[must_use]
    pub fn with_seed_override(mut self, seed: Option<u64>) -> Study {
        self.seed_override = seed;
        self
    }

    /// The dynamic-instruction cap per run.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Directory CSV artifacts are written to.
    pub fn out_dir(&self) -> &PathBuf {
        &self.out_dir
    }

    /// The workload instance this study uses for `id`.
    pub fn workload(&self, id: WorkloadId) -> Workload {
        let size = self.size_override.unwrap_or_else(|| {
            (u64::from(id.default_size()) * u64::from(self.scale_percent) / 100).max(1) as u32
        });
        let workload = Workload::new(id).with_size(size);
        match self.seed_override {
            Some(seed) => workload.with_seed(seed),
            None => workload,
        }
    }

    /// Runs `id` once, streaming the trace through an analyzer configured by
    /// `config` (with the workload's segment map applied). Returns the
    /// analysis report and the run outcome.
    ///
    /// # Panics
    ///
    /// Panics on VM faults — the workloads are deterministic and fault-free,
    /// so a fault is a generator bug the test suite would catch.
    pub fn measure(&self, id: WorkloadId, config: &AnalysisConfig) -> (AnalysisReport, RunOutcome) {
        let workload = self.workload(id);
        let mut vm = workload.vm();
        let config = config.clone().with_segments(vm.segment_map());
        let mut analyzer = LiveWell::new(config);
        let outcome = vm
            .run_traced(self.fuel, |record| {
                analyzer.process(record);
            })
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        (analyzer.finish(), outcome)
    }

    /// Captures `id`'s trace in memory for multi-configuration studies, so
    /// the VM runs once per workload instead of once per configuration.
    ///
    /// # Errors
    ///
    /// [`CellError::Vm`] on a VM fault. The workloads are deterministic and
    /// fault-free, so in practice this only fires under fault injection or
    /// a generator bug — but a sweep must degrade to a quarantined cell
    /// either way, never die.
    pub fn collect(
        &self,
        id: WorkloadId,
    ) -> Result<(Vec<paragraph_trace::TraceRecord>, SegmentMap), CellError> {
        self.workload(id)
            .collect_trace(self.fuel)
            .map_err(|e| CellError::Vm(format!("{id}: {e}")))
    }

    fn checkpoint_file(&self, study: &str, id: WorkloadId) -> PathBuf {
        self.checkpoints_dir().join(format!("{study}-{id}.pgcp"))
    }

    /// The directory harness checkpoints and stage markers live in.
    pub(crate) fn checkpoints_dir(&self) -> PathBuf {
        self.out_dir.join("checkpoints")
    }

    /// Like [`Study::measure`], but restartable: analyzer state is
    /// checkpointed every [`CHECKPOINT_EVERY`] records under
    /// `<out_dir>/checkpoints/`, and a run that finds a matching checkpoint
    /// resumes from it instead of re-analyzing from the start (the workload
    /// replays deterministically; already-analyzed records are skipped).
    /// The checkpoint is deleted on successful completion. A checkpoint that
    /// fails to load — e.g. taken under a different configuration — is
    /// ignored and the analysis starts over.
    ///
    /// # Panics
    ///
    /// Panics on VM faults, as for [`Study::measure`].
    pub fn measure_restartable(
        &self,
        study: &str,
        id: WorkloadId,
        config: &AnalysisConfig,
    ) -> (AnalysisReport, RunOutcome) {
        let (report, outcome, _) = self.measure_restartable_instrumented(study, id, config);
        (report, outcome)
    }

    /// [`Study::measure_restartable`] plus a [`RunTelemetry`] record of how
    /// the run itself went — wall time, throughput, checkpoint activity —
    /// for the sweeps' per-workload telemetry manifests.
    ///
    /// # Panics
    ///
    /// Panics on VM faults, as for [`Study::measure`].
    pub fn measure_restartable_instrumented(
        &self,
        study: &str,
        id: WorkloadId,
        config: &AnalysisConfig,
    ) -> (AnalysisReport, RunOutcome, RunTelemetry) {
        let workload = self.workload(id);
        let mut vm = workload.vm();
        let config = config.clone().with_segments(vm.segment_map());
        let path = self.checkpoint_file(study, id);

        let mut analyzer = None;
        if let Ok(file) = fs::File::open(&path) {
            match LiveWell::resume_from(BufReader::new(file), config.clone()) {
                Ok(resumed) => {
                    eprintln!(
                        "{study}/{id}: resuming from {} at record {}",
                        path.display(),
                        resumed.records_processed()
                    );
                    analyzer = Some(resumed);
                }
                Err(e) => {
                    eprintln!("{study}/{id}: ignoring checkpoint {}: {e}", path.display());
                }
            }
        }
        let mut analyzer = analyzer.unwrap_or_else(|| LiveWell::new(config));
        let skip = analyzer.records_processed();

        let started = Instant::now();
        let mut seen = 0u64;
        let mut checkpoints_written = 0u64;
        let mut save_failed = false;
        let outcome = vm
            .run_traced(self.fuel, |record| {
                seen += 1;
                if seen <= skip {
                    return;
                }
                analyzer.process(record);
                if !save_failed && analyzer.records_processed() % CHECKPOINT_EVERY == 0 {
                    if let Err(e) = write_checkpoint_atomic(&analyzer, &path) {
                        // Checkpointing is best-effort; the analysis itself
                        // must not die because the disk did.
                        eprintln!("{study}/{id}: checkpoint failed, continuing without: {e}");
                        save_failed = true;
                    } else {
                        checkpoints_written += 1;
                    }
                }
            })
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let _ = fs::remove_file(&path);
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let analyzed = analyzer.records_processed().saturating_sub(skip);
        let telemetry = RunTelemetry {
            records_analyzed: analyzed,
            wall_ns,
            records_per_sec: if wall_ns == 0 {
                0.0
            } else {
                analyzed as f64 / (wall_ns as f64 / 1e9)
            },
            checkpoints_written,
            resumed_at: (skip > 0).then_some(skip),
            window_stalls: analyzer.window_stalls(),
        };
        (analyzer.finish(), outcome, telemetry)
    }

    /// Writes a per-workload telemetry manifest under
    /// `<out_dir>/<study>/telemetry/<id>.json` and returns its path. The
    /// manifest joins the run's [`RunTelemetry`] with the report's headline
    /// figures, so sweep throughput can be compared run over run.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_run_manifest(
        &self,
        study: &str,
        id: WorkloadId,
        report: &AnalysisReport,
        telemetry: &RunTelemetry,
    ) -> std::io::Result<PathBuf> {
        let dir = self.out_dir.join(study).join("telemetry");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{id}.json"));
        fs::write(&path, run_manifest_json(id, report, telemetry))?;
        Ok(path)
    }

    /// Path of a completed-stage marker for `study`/`key` (used to make
    /// multi-workload sweeps restartable at workload granularity).
    fn stage_file(&self, study: &str, key: &str) -> PathBuf {
        self.checkpoints_dir().join(format!("{study}-{key}.row"))
    }

    /// Loads a previously stored stage result, if one exists.
    pub fn load_stage(&self, study: &str, key: &str) -> Option<String> {
        fs::read_to_string(self.stage_file(study, key)).ok()
    }

    /// Stores a completed stage result so an interrupted sweep can skip the
    /// stage on restart. Written through the shared crash-consistent helper
    /// ([`paragraph_core::artifact`]): unique temp name, synced, renamed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store_stage(&self, study: &str, key: &str, data: &str) -> std::io::Result<()> {
        paragraph_core::artifact::write_atomic_bytes(&self.stage_file(study, key), data.as_bytes())
    }

    /// Deletes every stage marker of `study` after a sweep completes, so the
    /// next full run starts fresh.
    pub fn clear_stages(&self, study: &str) {
        let Ok(entries) = fs::read_dir(self.out_dir.join("checkpoints")) else {
            return;
        };
        let prefix = format!("{study}-");
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&prefix) && name.ends_with(".row") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// How one instrumented harness run went: wall time, throughput, and
/// checkpoint/resume activity. Produced by
/// [`Study::measure_restartable_instrumented`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunTelemetry {
    /// Records analyzed by *this* process (excludes records skipped after a
    /// resume).
    pub records_analyzed: u64,
    /// Wall-clock nanoseconds of the trace-and-analyze loop.
    pub wall_ns: u64,
    /// Analysis throughput in records per second.
    pub records_per_sec: f64,
    /// Checkpoints successfully written during the run.
    pub checkpoints_written: u64,
    /// Record index a prior checkpoint resumed from, if any.
    pub resumed_at: Option<u64>,
    /// Times the instruction window constrained placement (since start or
    /// resume; see [`LiveWell::window_stalls`]).
    pub window_stalls: u64,
}

/// Renders a per-workload telemetry manifest as a single JSON object.
pub fn run_manifest_json(
    id: WorkloadId,
    report: &AnalysisReport,
    telemetry: &RunTelemetry,
) -> String {
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"records\":{},\"placed\":{},",
            "\"critical_path\":{},\"parallelism\":{:.6},",
            "\"live_well_evictions\":{},\"records_analyzed\":{},",
            "\"wall_ns\":{},\"records_per_sec\":{:.2},",
            "\"checkpoints_written\":{},\"resumed_at\":{},",
            "\"window_stalls\":{}}}\n"
        ),
        id.name(),
        report.total_records(),
        report.placed_ops(),
        report.critical_path_length(),
        report.available_parallelism(),
        report.live_well_evictions(),
        telemetry.records_analyzed,
        telemetry.wall_ns,
        telemetry.records_per_sec,
        telemetry.checkpoints_written,
        telemetry
            .resumed_at
            .map_or("null".to_owned(), |v| v.to_string()),
        telemetry.window_stalls,
    )
}

/// Writes a checkpoint to `path` through the shared crash-consistent
/// helper: unique temp name, `sync_all`, rename, parent-directory fsync.
/// One implementation serves the harness and the CLI — see
/// [`paragraph_core::artifact::write_atomic`].
fn write_checkpoint_atomic(analyzer: &LiveWell, path: &Path) -> std::io::Result<()> {
    paragraph_core::artifact::write_atomic(path, |out| {
        analyzer
            .save_checkpoint(out)
            .map_err(|e| std::io::Error::other(e.to_string()))
    })
}

impl Default for Study {
    fn default() -> Study {
        Study::from_env()
    }
}

/// Analyzes one captured trace under many configurations concurrently,
/// one OS thread per configuration (the trace is shared read-only). Order
/// of the results matches `configs`.
///
/// Multi-configuration studies (Table 4's four renaming conditions, Figure
/// 8's window ladder) are embarrassingly parallel across configurations;
/// this keeps the harness wall-clock close to the slowest single analysis.
pub fn analyze_many(records: &[TraceRecord], configs: &[AnalysisConfig]) -> Vec<AnalysisReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|config| scope.spawn(move || analyze_refs(records, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(report) => report,
                // Surface the analysis panic on the caller's thread with
                // its original payload instead of a generic message.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Worker-thread count for the sweep drivers: `PARAGRAPH_JOBS`, or `0`
/// (auto: all cores) when unset or unparsable.
pub fn jobs_from_env() -> usize {
    std::env::var("PARAGRAPH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The core count visible to this process, as recorded in bench rows.
/// Wall-clock numbers from differently-sized boxes are not comparable —
/// `paragraph profile --bench-compare` only gates rows whose core counts
/// match — so every row carries where it came from.
pub fn nproc() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

/// Appends one JSONL row to a bench history file (`BENCH.hotpath.json`,
/// `BENCH.sweep.json`). Each harness run adds a row; the files are the
/// repo's perf trajectory and feed `paragraph profile --bench-compare`.
/// A trailing newline is added when the row lacks one, and an `"nproc"`
/// field recording [`nproc`] is injected when the row does not already
/// carry one, so the compare gate can refuse cross-machine comparisons.
///
/// # Errors
///
/// Propagates any I/O error from opening or appending to the file.
pub fn append_bench_row(path: &Path, row: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut line = row.trim_end().to_owned();
    if !line.contains("\"nproc\"") {
        if let Some(stripped) = line.strip_suffix('}') {
            let sep = if stripped.ends_with('{') { "" } else { "," };
            line = format!("{stripped}{sep}\"nproc\":{}}}", nproc());
        }
    }
    line.push('\n');
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(line.as_bytes())?;
    Ok(())
}

/// Formats `n` with thousands separators, as the paper's tables do.
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats an available-parallelism value in the paper's style (two decimal
/// places, thousands separators on the integer part).
pub fn parallelism(p: f64) -> String {
    let scaled = (p * 100.0).round() as u64;
    format!("{}.{:02}", thousands(scaled / 100), scaled % 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_many_matches_sequential() {
        use paragraph_core::{RenameSet, WindowSize};
        use paragraph_trace::synthetic;
        let trace = synthetic::random_trace(2000, 5);
        let configs = vec![
            AnalysisConfig::dataflow_limit(),
            AnalysisConfig::dataflow_limit().with_renames(RenameSet::none()),
            AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(64)),
        ];
        let parallel = analyze_many(&trace, &configs);
        for (config, report) in configs.iter().zip(&parallel) {
            let sequential = analyze_refs(&trace, config);
            assert_eq!(
                report.critical_path_length(),
                sequential.critical_path_length()
            );
            assert_eq!(report.placed_ops(), sequential.placed_ops());
        }
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(23302), "23,302");
        assert_eq!(thousands(1234567890), "1,234,567,890");
    }

    #[test]
    fn parallelism_formatting() {
        assert_eq!(parallelism(13.28), "13.28");
        assert_eq!(parallelism(23302.6), "23,302.60");
        assert_eq!(parallelism(0.5), "0.50");
        assert_eq!(parallelism(0.999), "1.00");
    }

    fn temp_study(tag: &str) -> Study {
        let out =
            std::env::temp_dir().join(format!("paragraph-bench-test-{tag}-{}", std::process::id()));
        Study::new(200_000, 5, out)
    }

    #[test]
    fn restartable_measure_matches_plain_measure() {
        let study = temp_study("match");
        let config = AnalysisConfig::dataflow_limit();
        let (plain, _) = study.measure(WorkloadId::Xlisp, &config);
        let (restartable, _) = study.measure_restartable("t", WorkloadId::Xlisp, &config);
        assert_eq!(plain.to_json(), restartable.to_json());
        // The checkpoint is cleaned up after completion.
        assert!(!study.checkpoint_file("t", WorkloadId::Xlisp).exists());
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn restartable_measure_resumes_from_a_mid_run_checkpoint() {
        let study = temp_study("resume");
        let config = AnalysisConfig::dataflow_limit();
        let (full, _) = study.measure(WorkloadId::Eqntott, &config);

        // Simulate an interrupted run: analyze the first half, checkpoint,
        // then let measure_restartable pick it up.
        let workload = study.workload(WorkloadId::Eqntott);
        let mut vm = workload.vm();
        let segmented = config.clone().with_segments(vm.segment_map());
        let mut half = LiveWell::new(segmented);
        let mut seen = 0u64;
        let target = full.total_records() / 2;
        vm.run_traced(study.fuel(), |record| {
            if seen < target {
                half.process(record);
                seen += 1;
            }
        })
        .unwrap();
        let path = study.checkpoint_file("t", WorkloadId::Eqntott);
        write_checkpoint_atomic(&half, &path).unwrap();

        let (resumed, _) = study.measure_restartable("t", WorkloadId::Eqntott, &config);
        assert_eq!(full.to_json(), resumed.to_json());
        assert!(!path.exists());
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn stages_store_and_clear() {
        let study = temp_study("stage");
        assert!(study.load_stage("s", "a").is_none());
        study.store_stage("s", "a", "1,2,3").unwrap();
        assert_eq!(study.load_stage("s", "a").as_deref(), Some("1,2,3"));
        study.clear_stages("s");
        assert!(study.load_stage("s", "a").is_none());
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn study_workload_uses_default_size_at_full_scale() {
        let study = Study::new(1000, 100, PathBuf::from("results"));
        assert_eq!(
            study.workload(WorkloadId::Xlisp).size(),
            WorkloadId::Xlisp.default_size()
        );
        let half = Study::new(1000, 50, PathBuf::from("results"));
        assert_eq!(
            half.workload(WorkloadId::Xlisp).size(),
            WorkloadId::Xlisp.default_size() / 2
        );
        let forced = study.with_size_override(Some(7));
        assert_eq!(forced.workload(WorkloadId::Xlisp).size(), 7);
    }
}

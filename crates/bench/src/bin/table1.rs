//! Regenerates Table 1 of the paper: instruction class operation times.
//!
//! These latencies are not measured — they are the model configuration
//! (MIPS R2000/R3000-era operation times) that every analysis in the study
//! uses. Printing them from the crate guarantees the reported model is the
//! implemented model.

use paragraph_isa::{LatencyModel, OpClass};

fn main() {
    println!("Table 1: Instruction Class Operation Times");
    println!();
    println!("{:<28} {:>5}", "Operation Class", "Steps");
    println!("{:-<28} {:-<5}", "", "");
    let model = LatencyModel::paper();
    for class in OpClass::ALL {
        if !class.creates_value() {
            continue;
        }
        // The paper lists Load/Store as one row.
        if class == OpClass::Store {
            continue;
        }
        let label = if class == OpClass::Load {
            "Load/Store".to_owned()
        } else {
            class.paper_description().to_owned()
        };
        println!("{label:<28} {:>5}", model.latency(class));
    }
    println!();
    println!(
        "(control classes are observed in traces but never placed in the DDG: {})",
        OpClass::ALL
            .iter()
            .filter(|c| !c.creates_value())
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

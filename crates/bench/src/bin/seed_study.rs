//! Input-sensitivity study: how robust are the analogues' parallelism
//! numbers to their random inputs?
//!
//! The paper ran each SPEC benchmark on one input (Table 2); a fair
//! question for the reproduction is whether the analogue results are a
//! property of the program structure or of the particular seeded input.
//! This study re-runs every workload with [`SEEDS`] different input seeds
//! and reports the spread of the dataflow-limit available parallelism.
//! Tight spreads mean the dependence structure, not the data, carries the
//! result.

use paragraph_bench::{parallelism, Study};
use paragraph_core::{analyze_refs, AnalysisConfig};
use paragraph_workloads::{Workload, WorkloadId};

/// Seeds per workload.
const SEEDS: u64 = 5;

fn main() {
    let study = Study::from_env();
    println!("Seed Sensitivity Study: dataflow-limit parallelism over {SEEDS} input seeds");
    println!();
    println!(
        "{:<11} {:>12} {:>12} {:>12} {:>10}",
        "Benchmark", "min", "mean", "max", "spread"
    );
    println!("{:-<62}", "");
    for id in WorkloadId::ALL {
        let size = study.workload(id).size();
        let mut values = Vec::new();
        for seed in 0..SEEDS {
            let workload = Workload::new(id).with_size(size).with_seed(0xBEEF + seed);
            let (records, segments) = workload
                .collect_trace(study.fuel())
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            let config = AnalysisConfig::dataflow_limit().with_segments(segments);
            values.push(analyze_refs(&records, &config).available_parallelism());
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        println!(
            "{:<11} {:>12} {:>12} {:>12} {:>9.1}%",
            id.name(),
            parallelism(min),
            parallelism(mean),
            parallelism(max),
            100.0 * (max - min) / mean,
        );
    }
    println!();
    println!("(spread = (max - min) / mean; small values mean the analogue's");
    println!(" parallelism is structural, not an artifact of one input)");
}

//! Memory disambiguation study (extension).
//!
//! The paper assumes perfect memory disambiguation and cites limit studies
//! that vary "memory disambiguation strategies" among their constraints.
//! This study measures the other end of that axis: a machine that never
//! compares addresses, so loads conservatively wait for all earlier stores
//! and stores for all earlier memory operations. The ratio between the
//! perfect and conservative columns is how much of each benchmark's
//! parallelism is carried by memory-level reordering.

use paragraph_bench::{parallelism, Study};
use paragraph_core::{analyze_refs, AnalysisConfig, MemoryModel, WindowSize};
use paragraph_workloads::WorkloadId;

fn main() {
    let study = Study::from_env();
    println!("Memory Disambiguation Study: available parallelism");
    println!("(all renaming enabled, conservative syscalls)");
    println!();
    println!(
        "{:<11} {:>14} {:>14} {:>8} | {:>14} {:>14}",
        "Benchmark", "perfect", "no-disambig", "ratio", "perfect@1k", "no-dis@1k"
    );
    println!("{:-<84}", "");
    for id in WorkloadId::ALL {
        let (records, segments) = study
            .collect(id)
            .unwrap_or_else(|e| panic!("trace collection failed: {e}"));
        let base = AnalysisConfig::dataflow_limit().with_segments(segments);
        let perfect = analyze_refs(&records, &base).available_parallelism();
        let conservative = analyze_refs(
            &records,
            &base
                .clone()
                .with_memory_model(MemoryModel::NoDisambiguation),
        )
        .available_parallelism();
        let windowed = base.clone().with_window(WindowSize::bounded(1024));
        let perfect_w = analyze_refs(&records, &windowed).available_parallelism();
        let conservative_w = analyze_refs(
            &records,
            &windowed.with_memory_model(MemoryModel::NoDisambiguation),
        )
        .available_parallelism();
        println!(
            "{:<11} {:>14} {:>14} {:>8.1} | {:>14} {:>14}",
            id.name(),
            parallelism(perfect),
            parallelism(conservative),
            perfect / conservative.max(1e-9),
            parallelism(perfect_w),
            parallelism(conservative_w),
        );
    }
    println!();
    println!(
        "Memory-heavy benchmarks collapse to low single digits without\n\
         disambiguation (every load serializes behind every store), while\n\
         register-resident work keeps some of its parallelism — the reason\n\
         the paper's perfect-disambiguation numbers are an upper bound."
    );
}

//! Regenerates Figure 8 of the paper: window size vs. percent of total
//! available parallelism, one curve per benchmark, both axes logarithmic.
//!
//! Each point is a full DDG extraction with the instruction window bounded
//! at W contiguous trace instructions ("each point in the graph represents
//! a full DDG extraction and analysis"); the percent is relative to that
//! benchmark's unbounded dataflow limit. Conservative system calls, all
//! renaming enabled, as in the paper.
//!
//! A CSV matrix is written to `$PARAGRAPH_OUT/fig8.csv`.
//!
//! The sweep is restartable at workload granularity: each completed
//! workload's row is stored under `$PARAGRAPH_OUT/checkpoints/`, a rerun
//! after an interrupt skips finished workloads, and the markers are cleared
//! once the full sweep lands. Freshly computed workloads leave a telemetry
//! manifest (wall time, throughput) under `$PARAGRAPH_OUT/fig8/telemetry/`.

use paragraph_bench::{analyze_many, RunTelemetry, Study};
use paragraph_core::{analyze_refs, AnalysisConfig, WindowSize};
use paragraph_workloads::WorkloadId;
use std::fs;
use std::io::Write as _;
use std::time::Instant;

/// Window sizes swept (powers of ten with intermediate points, as the
/// paper's log-scale x axis).
const WINDOWS: [usize; 13] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024, 4_096, 16_384, 65_536,
];

fn main() -> std::io::Result<()> {
    let study = Study::from_env();
    fs::create_dir_all(study.out_dir())?;
    let csv_path = study.out_dir().join("fig8.csv");
    let mut csv = fs::File::create(&csv_path)?;
    write!(csv, "window")?;
    for id in WorkloadId::ALL {
        write!(csv, ",{id}")?;
    }
    writeln!(csv)?;

    println!("Figure 8: Window Size vs Percent of Total Available Parallelism");
    println!();
    print!("{:>8}", "window");
    for id in WorkloadId::ALL {
        print!(" {:>9}", id.name());
    }
    println!();
    println!("{:-<108}", "");

    // Capture each workload's trace once; sweep windows over it. Each
    // finished workload's column is stored as a stage marker so a rerun
    // after an interrupt skips it.
    let mut percents = vec![Vec::new(); WorkloadId::ALL.len()];
    let mut absolutes = vec![Vec::new(); WorkloadId::ALL.len()];
    for (w_idx, id) in WorkloadId::ALL.into_iter().enumerate() {
        if let Some(row) = study.load_stage("fig8", id.name()) {
            let values: Vec<f64> = row
                .split(',')
                .filter_map(|v| v.trim().parse().ok())
                .collect();
            // One absolute parallelism per window plus the unbounded limit.
            if values.len() == WINDOWS.len() + 1 {
                let full = values[values.len() - 1];
                absolutes[w_idx] = values.clone();
                percents[w_idx] = values.iter().map(|&p| 100.0 * p / full).collect();
                eprintln!("fig8/{id}: restored from a previous run");
                continue;
            }
            eprintln!("fig8/{id}: stale stage marker ignored");
        }
        let started = Instant::now();
        let (records, segments) = study.collect(id);
        let base = AnalysisConfig::dataflow_limit().with_segments(segments);
        let full_report = analyze_refs(&records, &base);
        let full = full_report.available_parallelism();
        let configs: Vec<AnalysisConfig> = WINDOWS
            .iter()
            .map(|&w| base.clone().with_window(WindowSize::bounded(w)))
            .collect();
        for report in analyze_many(&records, &configs) {
            let par = report.available_parallelism();
            percents[w_idx].push(100.0 * par / full);
            absolutes[w_idx].push(par);
        }
        percents[w_idx].push(100.0);
        absolutes[w_idx].push(full);
        let row: Vec<String> = absolutes[w_idx]
            .iter()
            .map(|p| format!("{p:.12}"))
            .collect();
        study.store_stage("fig8", id.name(), &row.join(","))?;

        // Telemetry manifest for this workload's full ladder: the records
        // figure counts one analysis pass per window plus the unbounded one.
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let analyzed = (records.len() as u64) * (WINDOWS.len() as u64 + 1);
        let telemetry = RunTelemetry {
            records_analyzed: analyzed,
            wall_ns,
            records_per_sec: if wall_ns == 0 {
                0.0
            } else {
                analyzed as f64 / (wall_ns as f64 / 1e9)
            },
            checkpoints_written: 0,
            resumed_at: None,
            window_stalls: 0,
        };
        let manifest = study.write_run_manifest("fig8", id, &full_report, &telemetry)?;
        eprintln!(
            "fig8/{id}: {:.2}M records/s across the window ladder, telemetry manifest {}",
            telemetry.records_per_sec / 1e6,
            manifest.display()
        );
    }
    study.clear_stages("fig8");

    for (row, &window) in WINDOWS.iter().enumerate() {
        print!("{window:>8}");
        write!(csv, "{window}")?;
        for col in 0..WorkloadId::ALL.len() {
            print!(" {:>8.2}%", percents[col][row]);
            write!(csv, ",{:.4}", percents[col][row])?;
        }
        println!();
        writeln!(csv)?;
    }
    print!("{:>8}", "inf");
    write!(csv, "inf")?;
    for _ in 0..WorkloadId::ALL.len() {
        print!(" {:>8.2}%", 100.0);
        write!(csv, ",100.0")?;
    }
    println!();
    writeln!(csv)?;

    println!();
    println!("absolute operations/cycle at window 128 (the paper: \"modest levels of");
    println!("parallelism ... can be obtained for all benchmarks with window sizes as");
    println!("small as 100 instructions\"):");
    let w128 = WINDOWS.iter().position(|&w| w == 128).unwrap();
    for (w_idx, id) in WorkloadId::ALL.into_iter().enumerate() {
        println!("  {:<11} {:>8.2}", id.name(), absolutes[w_idx][w128]);
    }
    println!();
    // Artifact-path diagnostics go to stderr, keeping stdout as the figure.
    eprintln!("CSV matrix written to {}", csv_path.display());
    Ok(())
}

//! Regenerates Figure 8 of the paper: window size vs. percent of total
//! available parallelism, one curve per benchmark, both axes logarithmic.
//!
//! Each point is a full DDG extraction with the instruction window bounded
//! at W contiguous trace instructions ("each point in the graph represents
//! a full DDG extraction and analysis"); the percent is relative to that
//! benchmark's unbounded dataflow limit. Conservative system calls, all
//! renaming enabled, as in the paper.
//!
//! A CSV matrix is written to `$PARAGRAPH_OUT/fig8.csv`.
//!
//! The (workload × window) grid — ten workloads, thirteen windows plus the
//! unbounded limit — runs through the sweep engine: each trace is decoded
//! once into the shared arena and the 140 cells fan out across
//! `PARAGRAPH_JOBS` worker threads. The sweep is restartable at cell
//! granularity (stage markers under `$PARAGRAPH_OUT/checkpoints/`, cleared
//! once the full sweep lands), and telemetry manifests go to
//! `$PARAGRAPH_OUT/fig8/telemetry/`.

use paragraph_bench::scheduler::{cell_manifest_json, sweep_manifest_json};
use paragraph_bench::{run_sweep, Study, SweepCell, SweepOptions};
use paragraph_core::{AnalysisConfig, WindowSize};
use paragraph_workloads::WorkloadId;
use std::fs;
use std::io::Write as _;

/// Window sizes swept (powers of ten with intermediate points, as the
/// paper's log-scale x axis).
const WINDOWS: [usize; 13] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024, 4_096, 16_384, 65_536,
];

/// Cells per workload: the window ladder plus the unbounded limit.
const LADDER: usize = WINDOWS.len() + 1;

fn main() -> std::io::Result<()> {
    let study = Study::from_env();
    fs::create_dir_all(study.out_dir())?;
    let telemetry_dir = study.out_dir().join("fig8").join("telemetry");
    fs::create_dir_all(&telemetry_dir)?;

    // Workload-major cell order: a worker chews through one workload's
    // ladder against one arena-resident trace before moving on.
    let mut cells = Vec::with_capacity(WorkloadId::ALL.len() * LADDER);
    for id in WorkloadId::ALL {
        for &w in &WINDOWS {
            cells.push(SweepCell::new(
                id,
                format!("w{w}"),
                AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(w)),
            ));
        }
        cells.push(SweepCell::new(id, "full", AnalysisConfig::dataflow_limit()));
    }
    let opts = SweepOptions {
        jobs: paragraph_bench::jobs_from_env(),
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&study, "fig8", &cells, &opts);

    let csv_path = study.out_dir().join("fig8.csv");
    let mut csv = fs::File::create(&csv_path)?;
    write!(csv, "window")?;
    for id in WorkloadId::ALL {
        write!(csv, ",{id}")?;
    }
    writeln!(csv)?;

    println!("Figure 8: Window Size vs Percent of Total Available Parallelism");
    println!();
    print!("{:>8}", "window");
    for id in WorkloadId::ALL {
        print!(" {:>9}", id.name());
    }
    println!();
    println!("{:-<108}", "");

    let mut percents = vec![Vec::new(); WorkloadId::ALL.len()];
    let mut absolutes = vec![Vec::new(); WorkloadId::ALL.len()];
    for (w_idx, id) in WorkloadId::ALL.into_iter().enumerate() {
        let ladder = &outcome.cells[w_idx * LADDER..(w_idx + 1) * LADDER];
        // Quarantined cells hole-punch the curve with NaN instead of
        // sinking the whole figure; the exit code reports the degradation.
        let full = ladder[LADDER - 1]
            .outcome()
            .map_or(f64::NAN, |c| c.metrics.parallelism);
        for result in ladder {
            let par = result.outcome().map_or(f64::NAN, |c| c.metrics.parallelism);
            absolutes[w_idx].push(par);
            percents[w_idx].push(100.0 * par / full);
            if let Some(err) = &result.error {
                eprintln!(
                    "fig8/{id}@{}: quarantined after {} attempt(s): {err}",
                    result.label, result.attempts,
                );
            }
        }
        // Per-workload telemetry: one manifest for the unbounded cell (the
        // workload's headline numbers) — the sweep manifest carries every
        // cell's timing.
        let manifest = telemetry_dir.join(format!("{id}.json"));
        if let Some(unbounded) = ladder[LADDER - 1].outcome() {
            paragraph_core::artifact::write_atomic_bytes(
                &manifest,
                cell_manifest_json(unbounded).as_bytes(),
            )?;
        }
        let ladder_wall: u64 = ladder
            .iter()
            .filter_map(|c| c.outcome())
            .map(|c| c.metrics.wall_ns)
            .sum();
        let analyzed = ladder[LADDER - 1]
            .outcome()
            .map_or(0, |c| c.metrics.records)
            * LADDER as u64;
        eprintln!(
            "fig8/{id}: {:.2}M records/s across the window ladder, telemetry manifest {}",
            if ladder_wall == 0 {
                0.0
            } else {
                analyzed as f64 / (ladder_wall as f64 / 1e9) / 1e6
            },
            manifest.display()
        );
    }

    for (row, &window) in WINDOWS.iter().enumerate() {
        print!("{window:>8}");
        write!(csv, "{window}")?;
        for col in 0..WorkloadId::ALL.len() {
            print!(" {:>8.2}%", percents[col][row]);
            write!(csv, ",{:.4}", percents[col][row])?;
        }
        println!();
        writeln!(csv)?;
    }
    print!("{:>8}", "inf");
    write!(csv, "inf")?;
    for _ in 0..WorkloadId::ALL.len() {
        print!(" {:>8.2}%", 100.0);
        write!(csv, ",100.0")?;
    }
    println!();
    writeln!(csv)?;
    csv.flush()?;

    println!();
    println!("absolute operations/cycle at window 128 (the paper: \"modest levels of");
    println!("parallelism ... can be obtained for all benchmarks with window sizes as");
    println!("small as 100 instructions\"):");
    let w128 = WINDOWS.iter().position(|&w| w == 128).unwrap();
    for (w_idx, id) in WorkloadId::ALL.into_iter().enumerate() {
        println!("  {:<11} {:>8.2}", id.name(), absolutes[w_idx][w128]);
    }
    println!();
    paragraph_core::artifact::write_atomic_bytes(
        &telemetry_dir.join("sweep.json"),
        sweep_manifest_json("fig8", &outcome).as_bytes(),
    )?;
    // Artifact-path diagnostics go to stderr, keeping stdout as the figure.
    eprintln!(
        "fig8: {} cells on {} worker(s) in {:.2}s (arena: {} decode(s), {} hit(s)); CSV matrix {}",
        outcome.cells.len(),
        outcome.jobs,
        outcome.wall_ns as f64 / 1e9,
        outcome.arena.misses,
        outcome.arena.hits,
        csv_path.display()
    );
    if outcome.quarantined() > 0 {
        eprintln!(
            "fig8: {} cell(s) quarantined; the figure is incomplete",
            outcome.quarantined()
        );
        std::process::exit(6);
    }
    Ok(())
}

//! Ablation studies beyond the paper's tables, for the design choices
//! DESIGN.md calls out:
//!
//! 1. **Latency model** — Table 1 latencies vs. unit latencies: how much of
//!    the critical path is operation latency rather than graph shape.
//! 2. **Syscall policy under a bounded window** — firewalls interact with
//!    the window; this quantifies the conservative-policy cost at realistic
//!    window sizes.
//! 3. **Functional-unit throttling (Figure 4 generalized)** — list-schedule
//!    each workload's explicit DDG onto 1..64 generic units and report the
//!    achieved operations/cycle, locating the knee where resources stop
//!    mattering. Uses reduced problem sizes (the explicit graph is
//!    materialized in memory).

use paragraph_bench::{parallelism, Study};
use paragraph_core::schedule::{schedule, ResourceModel};
use paragraph_core::{analyze_refs, AnalysisConfig, Ddg, LatencyModel, SyscallPolicy, WindowSize};
use paragraph_workloads::{Workload, WorkloadId};

fn main() {
    let study = Study::from_env();

    println!("Ablation 1: Table 1 latencies vs unit latencies (dataflow limit)");
    println!();
    println!(
        "{:<11} {:>14} {:>14} {:>14} {:>14}",
        "Benchmark", "CP (table1)", "CP (unit)", "Par (table1)", "Par (unit)"
    );
    println!("{:-<72}", "");
    for id in WorkloadId::ALL {
        let (records, segments) = study
            .collect(id)
            .unwrap_or_else(|e| panic!("trace collection failed: {e}"));
        let base = AnalysisConfig::dataflow_limit().with_segments(segments);
        let table1 = analyze_refs(&records, &base);
        let unit = analyze_refs(&records, &base.clone().with_latency(LatencyModel::unit()));
        println!(
            "{:<11} {:>14} {:>14} {:>14} {:>14}",
            id.name(),
            table1.critical_path_length(),
            unit.critical_path_length(),
            parallelism(table1.available_parallelism()),
            parallelism(unit.available_parallelism()),
        );
    }

    println!();
    println!("Ablation 2: syscall policy at window 1024 (conservative vs optimistic)");
    println!();
    println!(
        "{:<11} {:>16} {:>16} {:>9}",
        "Benchmark", "Par (conserv.)", "Par (optim.)", "Ratio"
    );
    println!("{:-<56}", "");
    for id in WorkloadId::ALL {
        let (records, segments) = study
            .collect(id)
            .unwrap_or_else(|e| panic!("trace collection failed: {e}"));
        let base = AnalysisConfig::dataflow_limit()
            .with_segments(segments)
            .with_window(WindowSize::bounded(1024));
        let cons = analyze_refs(&records, &base).available_parallelism();
        let opt = analyze_refs(
            &records,
            &base.clone().with_syscall_policy(SyscallPolicy::Optimistic),
        )
        .available_parallelism();
        println!(
            "{:<11} {:>16} {:>16} {:>9.3}",
            id.name(),
            parallelism(cons),
            parallelism(opt),
            if cons > 0.0 { opt / cons } else { 0.0 }
        );
    }

    println!();
    println!("Ablation 3: functional-unit throttling (ops/cycle on K generic units,");
    println!("            explicit DDG at reduced size, Table 1 latencies)");
    println!();
    let units = [1usize, 2, 4, 8, 16, 32, 64];
    print!("{:<11}", "Benchmark");
    for u in units {
        print!(" {:>8}", format!("{u}u"));
    }
    println!(" {:>9}", "dataflow");
    println!("{:-<84}", "");
    for id in WorkloadId::ALL {
        let size = (id.default_size() / 4).max(2);
        let workload = Workload::new(id).with_size(size);
        let (records, segments) = workload
            .collect_trace(400_000)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let config = AnalysisConfig::dataflow_limit().with_segments(segments);
        let ddg = Ddg::from_records(&records, &config);
        print!("{:<11}", id.name());
        for u in units {
            let result = schedule(&ddg, ResourceModel::units(u), &LatencyModel::paper());
            print!(" {:>8.2}", result.ops_per_cycle());
        }
        println!(" {:>9.2}", ddg.available_parallelism());
    }
    println!();
    println!("(each row should rise with K and saturate at the dataflow limit)");
}

//! Regenerates Table 3 of the paper: SPEC benchmark dataflow results.
//!
//! For each benchmark, the dataflow limit (all renaming on, infinite
//! window) is measured twice: with **conservative** system calls (each call
//! firewalls the graph) and with **optimistic** system calls (calls are
//! ignored). The paper's "Maximum Measurement Error" column is the relative
//! gap between the two available-parallelism figures — the uncertainty band
//! within which the true value lies.

use paragraph_bench::{parallelism, thousands, Study};
use paragraph_core::{AnalysisConfig, SyscallPolicy};
use paragraph_workloads::WorkloadId;

fn main() {
    let study = Study::from_env();
    println!("Table 3: SPEC Benchmark Dataflow Results");
    println!();
    println!(
        "{:<11} {:>8} | {:>14} {:>12} | {:>14} {:>12} | {:>7}",
        "Benchmark", "System", "Conservative", "", "Optimistic", "", "Max"
    );
    println!(
        "{:<11} {:>8} | {:>14} {:>12} | {:>14} {:>12} | {:>7}",
        "Name", "Calls", "Crit Path", "Avail Par", "Crit Path", "Avail Par", "Error"
    );
    println!("{:-<92}", "");
    for id in WorkloadId::ALL {
        let (conservative, _) = study.measure(id, &AnalysisConfig::dataflow_limit());
        let (optimistic, _) = study.measure(
            id,
            &AnalysisConfig::dataflow_limit().with_syscall_policy(SyscallPolicy::Optimistic),
        );
        let cons_par = conservative.available_parallelism();
        let opt_par = optimistic.available_parallelism();
        let error = if opt_par > 0.0 {
            (opt_par - cons_par).abs() / opt_par
        } else {
            0.0
        };
        println!(
            "{:<11} {:>8} | {:>14} {:>12} | {:>14} {:>12} | {:>7.2}",
            id.name(),
            thousands(conservative.syscalls()),
            thousands(conservative.critical_path_length()),
            parallelism(cons_par),
            thousands(optimistic.critical_path_length()),
            parallelism(opt_par),
            error
        );
    }
    println!();
    println!("(all renaming enabled, window = entire trace, no functional unit limits)");
}

//! Regenerates Table 2 of the paper: the benchmark inventory.
//!
//! For each of the ten SPEC89 analogues this prints the source language and
//! benchmark type from the paper, the analogue's problem size, and the
//! *measured* dynamic instruction counts: total executed and the number
//! analyzed (they differ only if `PARAGRAPH_FUEL` truncates a run, which is
//! the paper's own situation — 8 of its 10 traces were cut at 100M).

use paragraph_bench::{thousands, Study};
use paragraph_core::AnalysisConfig;
use paragraph_workloads::WorkloadId;

fn main() {
    let study = Study::from_env();
    println!("Table 2: Benchmarks Analyzed");
    println!();
    println!(
        "{:<11} {:<9} {:<11} {:>6} {:>16} {:>16} {:>9}",
        "Benchmark", "Source", "Benchmark", "Size", "Instructions", "Instructions", "Halted"
    );
    println!(
        "{:<11} {:<9} {:<11} {:>6} {:>16} {:>16} {:>9}",
        "Name", "Language", "Type", "", "Executed", "Analyzed", ""
    );
    println!("{:-<84}", "");
    for id in WorkloadId::ALL {
        let (report, outcome) = study.measure(id, &AnalysisConfig::dataflow_limit());
        println!(
            "{:<11} {:<9} {:<11} {:>6} {:>16} {:>16} {:>9}",
            id.name(),
            id.source_language(),
            id.benchmark_type(),
            study.workload(id).size(),
            thousands(outcome.executed()),
            thousands(report.total_records()),
            if outcome.halted() { "yes" } else { "fuel cap" }
        );
    }
    println!();
    println!(
        "(fuel cap: {} dynamic instructions; the paper capped traces at 100,000,000)",
        thousands(study.fuel())
    );
}

//! Program-phase study: the paper's open question.
//!
//! "Of course, later phases of a program could be very much unlike earlier
//! phases, possibly exhibiting much more, or much less parallelism. This
//! issue remains to be investigated." — §4.
//!
//! This study investigates it: each workload's trace is cut into
//! [`PHASES`] equal windows, each analyzed independently at the dataflow
//! limit, and the per-phase available parallelism is reported beside the
//! whole-trace value. A flat row means the whole-trace number is
//! representative; a bursty row (large max/min ratio) is the phase effect
//! the paper anticipated.

use paragraph_bench::{parallelism, Study};
use paragraph_core::{analyze_refs, AnalysisConfig};
use paragraph_workloads::WorkloadId;

/// Number of equal trace windows.
const PHASES: usize = 6;

fn main() {
    let study = Study::from_env();
    println!("Program Phase Study: per-phase available parallelism (dataflow limit)");
    println!();
    print!("{:<11} {:>11}", "Benchmark", "whole");
    for p in 0..PHASES {
        print!(" {:>10}", format!("phase {}", p + 1));
    }
    println!(" {:>8}", "max/min");
    println!("{:-<100}", "");
    for id in WorkloadId::ALL {
        let (records, segments) = study
            .collect(id)
            .unwrap_or_else(|e| panic!("trace collection failed: {e}"));
        let config = AnalysisConfig::dataflow_limit().with_segments(segments);
        let whole = analyze_refs(&records, &config).available_parallelism();
        print!("{:<11} {:>11}", id.name(), parallelism(whole));
        let chunk = (records.len() / PHASES).max(1);
        let mut phase_values = Vec::new();
        for window in records.chunks(chunk).take(PHASES) {
            let par = analyze_refs(window, &config).available_parallelism();
            phase_values.push(par);
            print!(" {:>10}", parallelism(par));
        }
        let max = phase_values.iter().cloned().fold(0.0f64, f64::max);
        let min = phase_values
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
        println!(" {:>8.1}", max / min);
    }
    println!();
    println!(
        "Each phase is analyzed as an independent trace (live well reset at the\n\
         cut), so phase values can exceed the whole-trace value when the cut\n\
         breaks a long recurrence, and high-ILP benchmarks lose parallelism\n\
         per-phase because parallelism accumulates with trace length."
    );
}

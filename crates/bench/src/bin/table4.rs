//! Regenerates Table 4 of the paper: available parallelism under the four
//! renaming conditions (none / registers / registers+stack / registers+
//! memory).
//!
//! Each workload's trace is captured once and re-analyzed under all four
//! conditions, exactly as Paragraph re-ran trace files with different
//! switch settings. System calls are conservative and the window infinite,
//! matching the paper's setup for this table.

use paragraph_bench::{analyze_many, parallelism, Study};
use paragraph_core::{AnalysisConfig, RenameSet};
use paragraph_workloads::WorkloadId;

fn main() {
    let study = Study::from_env();
    println!("Table 4: SPEC Benchmarks under Different Renaming Conditions");
    println!();
    println!(
        "{:<11} {:>13} {:>13} {:>19} {:>17}",
        "Benchmark", "No Renaming", "Regs Renamed", "Regs/Stack Renamed", "Reg/Mem Renamed"
    );
    println!("{:-<78}", "");
    for id in WorkloadId::ALL {
        let (records, segments) = study
            .collect(id)
            .unwrap_or_else(|e| panic!("trace collection failed: {e}"));
        print!("{:<11}", id.name());
        let configs: Vec<AnalysisConfig> = RenameSet::table4_conditions()
            .into_iter()
            .map(|renames| {
                AnalysisConfig::dataflow_limit()
                    .with_segments(segments)
                    .with_renames(renames)
            })
            .collect();
        let reports = analyze_many(&records, &configs);
        for (report, width) in reports.iter().zip([13usize, 13, 19, 17]) {
            print!("{:>width$}", parallelism(report.available_parallelism()));
        }
        println!();
    }
    println!();
    println!("(conservative system calls, window = entire trace, no functional unit limits)");
}

//! Value-lifetime and degree-of-sharing study (§2.3 of the paper).
//!
//! "We can also obtain the distribution of value lifetimes from the DDG.
//! The value lifetimes are useful in determining the amount of temporary
//! storage required to exploit the parallelism in the DDG. ... Next, we can
//! obtain the distribution of the degree of sharing of each computed value
//! (or token)." The paper describes these analyses without tabling them;
//! this study runs them for all ten benchmarks at the dataflow limit, plus
//! the live-well peak (the analyzer's own working set — the paper needed
//! "a very large memory (32 MBytes)").
//!
//! Full distributions are written as CSV to `$PARAGRAPH_OUT/lifetimes/`.

use paragraph_bench::{thousands, Study};
use paragraph_core::AnalysisConfig;
use paragraph_workloads::WorkloadId;
use std::fs;

fn main() -> std::io::Result<()> {
    let study = Study::from_env();
    let dir = study.out_dir().join("lifetimes");
    fs::create_dir_all(&dir)?;
    println!("Value Lifetime and Sharing Study (dataflow limit)");
    println!();
    println!(
        "{:<11} | {:>9} {:>7} {:>7} {:>9} | {:>8} {:>6} {:>6} | {:>12}",
        "Benchmark", "mean life", "p50", "p99", "max", "sharing", "p99", "max", "livewell peak"
    );
    println!("{:-<100}", "");
    for id in WorkloadId::ALL {
        let config = AnalysisConfig::dataflow_limit().with_value_stats(true);
        let (report, _) = study.measure(id, &config);
        let lifetimes = report.value_lifetimes().expect("value stats enabled");
        let sharing = report.sharing_degrees().expect("value stats enabled");
        println!(
            "{:<11} | {:>9.2} {:>7} {:>7} {:>9} | {:>8.2} {:>6} {:>6} | {:>12}",
            id.name(),
            lifetimes.mean(),
            lifetimes.percentile(0.5).unwrap_or(0),
            lifetimes.percentile(0.99).unwrap_or(0),
            lifetimes.max().unwrap_or(0),
            sharing.mean(),
            sharing.percentile(0.99).unwrap_or(0),
            sharing.max().unwrap_or(0),
            thousands(report.peak_live_values() as u64),
        );
        // Atomic writes: a crash mid-study never leaves a torn CSV behind.
        paragraph_core::artifact::write_atomic(&dir.join(format!("{id}-lifetimes.csv")), |out| {
            lifetimes.write_csv(out)
        })?;
        paragraph_core::artifact::write_atomic(&dir.join(format!("{id}-sharing.csv")), |out| {
            sharing.write_csv(out)
        })?;
    }
    println!();
    println!("CSV distributions written to {}", dir.display());
    println!(
        "\nReading: most values die within a handful of levels (p50 ≈ 1-2) —
renaming's storage cost is dominated by a long tail of long-lived values;
mean sharing near 1 means most tokens fire exactly one consumer, as an
explicit-token-store dataflow machine would hope."
    );
    Ok(())
}

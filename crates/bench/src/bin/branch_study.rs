//! Branch prediction study (extension; §3.2 of the paper).
//!
//! The paper's tables assume perfect control flow and note that "the branch
//! predictors currently available are not accurate enough to expose even
//! hundreds of instructions"; its firewall mechanism "can also be used to
//! represent the effect of a mispredicted conditional branch". This study
//! runs that mechanism: each workload is analyzed under a ladder of branch
//! policies from serial fetch (stall on every branch) through static and
//! dynamic predictors up to perfect control flow, with all renaming enabled
//! and an infinite window — the bridge between this paper's limits and the
//! branch-limited results of Wall (ASPLOS 1991) that it cites.

use paragraph_bench::{parallelism, Study};
use paragraph_core::branch::{BranchPolicy, PredictorKind};
use paragraph_core::{analyze_refs, AnalysisConfig};
use paragraph_workloads::WorkloadId;

fn policies() -> Vec<(&'static str, BranchPolicy)> {
    vec![
        ("stall", BranchPolicy::StallAlways),
        (
            "never-taken",
            BranchPolicy::Predict(PredictorKind::NeverTaken),
        ),
        (
            "always-taken",
            BranchPolicy::Predict(PredictorKind::AlwaysTaken),
        ),
        ("btfn", BranchPolicy::Predict(PredictorKind::Btfn)),
        (
            "bimodal-12",
            BranchPolicy::Predict(PredictorKind::Bimodal { index_bits: 12 }),
        ),
        (
            "gshare-12",
            BranchPolicy::Predict(PredictorKind::Gshare { index_bits: 12 }),
        ),
        ("perfect", BranchPolicy::Perfect),
    ]
}

fn main() {
    let study = Study::from_env();
    println!("Branch Prediction Study: available parallelism under branch policies");
    println!("(all renaming enabled, infinite window, conservative syscalls)");
    println!();
    print!("{:<11}", "Benchmark");
    for (name, _) in policies() {
        print!(" {:>12}", name);
    }
    println!(" {:>10}", "accuracy*");
    println!("{:-<114}", "");
    for id in WorkloadId::ALL {
        let (records, segments) = study
            .collect(id)
            .unwrap_or_else(|e| panic!("trace collection failed: {e}"));
        print!("{:<11}", id.name());
        let mut gshare_accuracy = None;
        for (name, policy) in policies() {
            let config = AnalysisConfig::dataflow_limit()
                .with_segments(segments)
                .with_branch_policy(policy);
            let report = analyze_refs(&records, &config);
            if name == "gshare-12" {
                gshare_accuracy = report.predictor().map(|p| p.accuracy());
            }
            print!(" {:>12}", parallelism(report.available_parallelism()));
        }
        match gshare_accuracy {
            Some(acc) => println!(" {:>9.2}%", 100.0 * acc),
            None => println!(" {:>10}", "-"),
        }
    }
    println!();
    println!("* prediction accuracy of the gshare-12 predictor on that benchmark");
    println!();
    println!(
        "The expected shape: the stall column collapses everything toward the\n\
         per-branch-resolution serial bound; accuracy buys parallelism back in\n\
         order (static < bimodal < gshare < perfect), and the gap between the\n\
         best predictor and perfect control flow is the paper's point that\n\
         \"other methods of exposing independent instructions ... will be\n\
         required\"."
    );
}

//! Regenerates Figure 7 of the paper: parallelism profiles for all ten
//! benchmarks (operations available per level of the topologically sorted
//! DDG, conservative system calls, all renaming enabled).
//!
//! One CSV series per benchmark is written to `$PARAGRAPH_OUT/fig7/`
//! (default `results/fig7/`), and a compact ASCII rendering of each profile
//! is printed — enough to see the paper's headline observation that
//! "parallelism is bursty, with periods of lots of parallelism followed by
//! periods of much less parallelism".
//!
//! The sweep is restartable: analyzer state is checkpointed periodically
//! under `$PARAGRAPH_OUT/checkpoints/`, and a rerun after an interrupt
//! resumes mid-workload instead of starting the analysis over. Each
//! workload also leaves a telemetry manifest (wall time, throughput,
//! checkpoint activity) under `$PARAGRAPH_OUT/fig7/telemetry/`, so sweep
//! performance can be compared run over run.

use paragraph_bench::{parallelism, Study};
use paragraph_core::AnalysisConfig;
use paragraph_workloads::WorkloadId;
use std::fs;
use std::io::BufWriter;

fn main() -> std::io::Result<()> {
    let study = Study::from_env();
    let dir = study.out_dir().join("fig7");
    fs::create_dir_all(&dir)?;
    println!("Figure 7: Parallelism Profiles for the SPEC Benchmarks");
    for id in WorkloadId::ALL {
        let (report, _, telemetry) =
            study.measure_restartable_instrumented("fig7", id, &AnalysisConfig::dataflow_limit());
        let path = dir.join(format!("{id}.csv"));
        report
            .profile()
            .write_csv(BufWriter::new(fs::File::create(&path)?))?;
        let manifest = study.write_run_manifest("fig7", id, &report, &telemetry)?;
        // Diagnostics (throughput, artifact paths) go to stderr; stdout is
        // the figure itself.
        eprintln!(
            "fig7/{id}: {:.2}M records/s, telemetry manifest {}",
            telemetry.records_per_sec / 1e6,
            manifest.display()
        );
        println!();
        println!(
            "{id} — {} levels, mean {} ops/level, burstiness (cv) {:.2}  [{}]",
            report.critical_path_length(),
            parallelism(report.available_parallelism()),
            report.profile().burstiness(),
            path.display()
        );
        print!("{}", report.profile().ascii_plot(72, 10));
    }
    Ok(())
}

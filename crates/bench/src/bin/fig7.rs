//! Regenerates Figure 7 of the paper: parallelism profiles for all ten
//! benchmarks (operations available per level of the topologically sorted
//! DDG, conservative system calls, all renaming enabled).
//!
//! One CSV series per benchmark is written to `$PARAGRAPH_OUT/fig7/`
//! (default `results/fig7/`), and a compact ASCII rendering of each profile
//! is printed — enough to see the paper's headline observation that
//! "parallelism is bursty, with periods of lots of parallelism followed by
//! periods of much less parallelism".
//!
//! The ten workloads run through the sweep engine: each trace is generated
//! once into the shared arena and the per-workload analysis cells fan out
//! across `PARAGRAPH_JOBS` worker threads (default: all cores). The sweep
//! is restartable at cell granularity — each completed workload leaves a
//! stage marker under `$PARAGRAPH_OUT/checkpoints/`, and a rerun after an
//! interrupt reuses it byte-for-byte instead of re-analyzing. Telemetry
//! manifests (per workload and for the sweep as a whole) land under
//! `$PARAGRAPH_OUT/fig7/telemetry/`.

use paragraph_bench::scheduler::{cell_manifest_json, sweep_manifest_json};
use paragraph_bench::{parallelism, run_sweep, Study, SweepCell, SweepOptions};
use paragraph_core::AnalysisConfig;
use paragraph_workloads::WorkloadId;
use std::fs;
use std::io::BufWriter;

fn main() -> std::io::Result<()> {
    let study = Study::from_env();
    let dir = study.out_dir().join("fig7");
    let telemetry_dir = dir.join("telemetry");
    fs::create_dir_all(&dir)?;
    fs::create_dir_all(&telemetry_dir)?;

    let cells: Vec<SweepCell> = WorkloadId::ALL
        .into_iter()
        .map(|id| SweepCell::new(id, "dataflow", AnalysisConfig::dataflow_limit()))
        .collect();
    let opts = SweepOptions {
        jobs: paragraph_bench::jobs_from_env(),
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&study, "fig7", &cells, &opts);

    println!("Figure 7: Parallelism Profiles for the SPEC Benchmarks");
    for result in &outcome.cells {
        let id = result.workload;
        // Quarantined cells are reported, not rendered: every healthy
        // workload's figure still lands, and the exit code says the run
        // was degraded.
        let Some(cell) = result.outcome() else {
            eprintln!(
                "fig7/{id}: quarantined after {} attempt(s): {}",
                result.attempts,
                result.error.as_deref().unwrap_or("unknown error"),
            );
            continue;
        };
        let path = dir.join(format!("{id}.csv"));
        cell.profile
            .write_csv(BufWriter::new(fs::File::create(&path)?))?;
        let manifest = telemetry_dir.join(format!("{id}.json"));
        paragraph_core::artifact::write_atomic_bytes(
            &manifest,
            cell_manifest_json(cell).as_bytes(),
        )?;
        // Diagnostics (throughput, artifact paths) go to stderr; stdout is
        // the figure itself.
        eprintln!(
            "fig7/{id}: {:.2}M records/s{}, telemetry manifest {}",
            records_per_sec(cell.metrics.records, cell.metrics.wall_ns) / 1e6,
            if cell.from_stage { " (restored)" } else { "" },
            manifest.display()
        );
        println!();
        println!(
            "{id} — {} levels, mean {} ops/level, burstiness (cv) {:.2}  [{}]",
            cell.metrics.critical_path,
            parallelism(cell.metrics.parallelism),
            cell.profile.burstiness(),
            path.display()
        );
        print!("{}", cell.profile.ascii_plot(72, 10));
    }
    paragraph_core::artifact::write_atomic_bytes(
        &telemetry_dir.join("sweep.json"),
        sweep_manifest_json("fig7", &outcome).as_bytes(),
    )?;
    eprintln!(
        "fig7: {} cells on {} worker(s) in {:.2}s (arena: {} decode(s), {} hit(s))",
        outcome.cells.len(),
        outcome.jobs,
        outcome.wall_ns as f64 / 1e9,
        outcome.arena.misses,
        outcome.arena.hits,
    );
    if outcome.quarantined() > 0 {
        eprintln!(
            "fig7: {} cell(s) quarantined; the figure is incomplete",
            outcome.quarantined()
        );
        std::process::exit(6);
    }
    Ok(())
}

fn records_per_sec(records: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        records as f64 / (wall_ns as f64 / 1e9)
    }
}

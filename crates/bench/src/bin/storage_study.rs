//! Storage-occupancy study (§2.3 of the paper).
//!
//! "The value lifetimes are useful in determining the amount of temporary
//! storage required to exploit the parallelism in the DDG" — and the
//! dataflow literature's waiting-token profiles measure the same quantity.
//! This study materializes each workload's DDG (at reduced problem size —
//! the explicit graph lives in memory) and reports how many values are
//! simultaneously live: the single-assignment storage an abstract machine
//! executing the DDG at full speed would need, which is exactly the cost
//! of the renaming that Table 4 shows to be mandatory.

use paragraph_bench::{thousands, Study};
use paragraph_core::{AnalysisConfig, Ddg};
use paragraph_workloads::{Workload, WorkloadId};

fn main() {
    let study = Study::from_env();
    println!("Storage Occupancy Study (reduced sizes, explicit DDG, dataflow limit)");
    println!();
    println!(
        "{:<11} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "Benchmark", "ops", "values", "peak live", "mean live", "arch. regs*"
    );
    println!("{:-<76}", "");
    for id in WorkloadId::ALL {
        let size = (study.workload(id).size() / 4).max(2);
        let (records, segments) = Workload::new(id)
            .with_size(size)
            .collect_trace(400_000)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let config = AnalysisConfig::dataflow_limit().with_segments(segments);
        let ddg = Ddg::from_records(&records, &config);
        let occupancy = ddg.storage_occupancy();
        let peak = occupancy.iter().copied().max().unwrap_or(0);
        let mean = if occupancy.is_empty() {
            0.0
        } else {
            occupancy.iter().sum::<u64>() as f64 / occupancy.len() as f64
        };
        println!(
            "{:<11} {:>10} {:>12} {:>12} {:>12.1} {:>14}",
            id.name(),
            thousands(ddg.len() as u64),
            thousands(ddg.value_lifetimes().count()),
            thousands(peak),
            mean,
            64,
        );
    }
    println!();
    println!("* the machine's architectural registers (32 int + 32 fp), for scale:");
    println!("  the peak-live column is how many single-assignment storage slots the");
    println!("  dataflow execution needs at once — orders of magnitude more than the");
    println!("  architected state, the storage price of the Table 4 parallelism.");
}

//! Window × renaming interaction study (extension).
//!
//! Figure 8 sweeps the window with *all* renaming enabled, and Table 4
//! sweeps renaming with an *infinite* window. This study crosses the two
//! axes: at practical window sizes, does memory renaming still matter, or
//! does the window bind first? The paper's conclusion — that exposing the
//! big numbers "requires large instruction windows as well as the ability
//! to rename both registers and memory" — implies both constraints must be
//! relaxed together; this table shows the interaction explicitly.

use paragraph_bench::{analyze_many, parallelism, Study};
use paragraph_core::{AnalysisConfig, RenameSet, WindowSize};
use paragraph_workloads::WorkloadId;

const WINDOWS: [usize; 3] = [32, 1024, 32_768];

fn main() {
    let study = Study::from_env();
    println!("Window x Renaming Interaction: available parallelism");
    println!("(conservative syscalls; r = registers renamed, rm = registers+memory)");
    println!();
    print!("{:<11}", "Benchmark");
    for w in WINDOWS {
        print!(" {:>9} {:>9}", format!("{w} r"), format!("{w} rm"));
    }
    println!(" {:>9} {:>9}", "inf r", "inf rm");
    println!("{:-<96}", "");
    for id in WorkloadId::ALL {
        let (records, segments) = study
            .collect(id)
            .unwrap_or_else(|e| panic!("trace collection failed: {e}"));
        let mut configs = Vec::new();
        for window in WINDOWS
            .iter()
            .map(|&w| WindowSize::bounded(w))
            .chain([WindowSize::Infinite])
        {
            for renames in [RenameSet::registers_only(), RenameSet::all()] {
                configs.push(
                    AnalysisConfig::dataflow_limit()
                        .with_segments(segments)
                        .with_window(window)
                        .with_renames(renames),
                );
            }
        }
        let reports = analyze_many(&records, &configs);
        print!("{:<11}", id.name());
        for report in &reports {
            print!(" {:>9}", parallelism(report.available_parallelism()));
        }
        println!();
    }
    println!();
    println!(
        "Reading across a row: at small windows the r and rm columns agree —\n\
         the window binds before storage reuse does — and the renaming gap\n\
         only opens once the window is large. Both constraints must be\n\
         relaxed together, as the paper's summary says."
    );
}

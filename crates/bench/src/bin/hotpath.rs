//! Hot-path benchmark: block trace decode + paged live well, end to end.
//!
//! Measures the single-cell analyze pipeline — decode a binary v2 trace
//! from disk and stream it through the live well — in its two
//! implementations:
//!
//! * **before** — the pre-optimization shape: per-record decode
//!   ([`TraceReader::with_per_record_decode`]) feeding
//!   [`FlatLiveWell::process`] one record at a time, the flat
//!   `FastMap`-backed memory table.
//! * **after** — block decode ([`TraceReader::read_block`]) feeding
//!   [`LiveWell::process_slice`] in chunk-sized slices, the paged memory
//!   table.
//!
//! Every repetition asserts the two reports are byte-identical before any
//! timing is kept, so the speedup can never come from computing something
//! different. Results go three places: a human summary on stdout, the
//! canonical report JSON under `PARAGRAPH_OUT` (quick mode writes
//! `hotpath.quick.report.json`, diffed against the committed golden in CI;
//! the full run writes `hotpath.report.json`), and an appended line in
//! `BENCH.hotpath.json` — the perf trajectory.
//!
//! Usage: `cargo run --release -p paragraph-bench --bin hotpath [-- --quick]`

use paragraph_bench::{thousands, Study};
use paragraph_core::{
    analyze_parallel, AnalysisConfig, AnalysisReport, FlatLiveWell, LiveWell, RenameSet,
};
use paragraph_isa::OpClass;
use paragraph_trace::binary::{TraceReader, TraceWriter};
use paragraph_trace::source::DecodeAhead;
use paragraph_trace::{Loc, SegmentMap, TraceRecord, TraceSource};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Records in the full benchmark trace (the acceptance floor is 10M).
const FULL_RECORDS: u64 = 12_000_000;

/// Records in the quick (CI smoke) trace: big enough to cross many chunk
/// and page boundaries, small enough for a debug-pool runner.
const QUICK_RECORDS: u64 = 400_000;

/// Segment boundaries of the synthetic trace. The repo's VM (like the
/// paper's DECstation traces) is **word**-addressed, so these are word
/// addresses: data below `HEAP_BASE`, heap above it, stack above
/// `STACK_FLOOR`.
const HEAP_BASE: u64 = 1 << 22;
const STACK_FLOOR: u64 = 1 << 26;

/// SplitMix64, the same minimal PRNG the synthetic trace module uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Writes a deterministic synthetic trace shaped like the word-addressed
/// traces the VM emits: a stack frame whose base moves on call/return but
/// whose spills land on a handful of nearby words, sequential heap array
/// walks with loads biased to recent words, and a sprinkle of sparse far
/// pointers, interleaved with register compute and branches.
///
/// `syscall_every: Some(n)` additionally emits a conservative system call
/// every `n` records — the firewall cut points the parallel-analyze leg
/// shards at. `None` leaves the byte stream exactly as before the
/// parameter existed, keeping the committed golden report stable.
fn write_trace(
    path: &Path,
    records: u64,
    seed: u64,
    syscall_every: Option<u64>,
) -> std::io::Result<u64> {
    let file = File::create(path)?;
    let mut writer = TraceWriter::new(
        BufWriter::new(file),
        SegmentMap::new(HEAP_BASE, STACK_FLOOR),
    )?;
    let mut rng = Rng(seed);
    let mut heap_cursor = HEAP_BASE;
    let mut sp = STACK_FLOOR + (1 << 12);
    let reg = |rng: &mut Rng| Loc::int(1 + (rng.next() % 8) as u8);
    for i in 0..records {
        let pc = 0x400_000 + i * 4;
        if let Some(every) = syscall_every {
            if (i + 1) % every == 0 {
                writer.write_record(&TraceRecord::syscall(pc, &[], None))?;
                continue;
            }
        }
        // Spills cluster on the first couple dozen words of the frame.
        let stack_addr = sp + rng.next() % 24;
        let record = match rng.next() % 100 {
            0..=34 => {
                let a = reg(&mut rng);
                let b = reg(&mut rng);
                TraceRecord::compute(pc, OpClass::IntAlu, &[a, b], reg(&mut rng))
            }
            35..=49 => TraceRecord::load(pc, stack_addr, Some(reg(&mut rng)), reg(&mut rng)),
            50..=62 => TraceRecord::store(pc, stack_addr, reg(&mut rng), Some(reg(&mut rng))),
            63..=72 => {
                // Sequential array walk: one word at a time, densely
                // filling pages as the table grows.
                heap_cursor += 1;
                TraceRecord::store(pc, heap_cursor, reg(&mut rng), None)
            }
            73..=80 => {
                let back = 1 + rng.next() % 512;
                TraceRecord::load(
                    pc,
                    heap_cursor.saturating_sub(back).max(HEAP_BASE),
                    None,
                    reg(&mut rng),
                )
            }
            81..=82 => {
                // Sparse far pointers: single-occupant pages.
                let far = HEAP_BASE + rng.next() % (1 << 22);
                TraceRecord::load(pc, far, None, reg(&mut rng))
            }
            83..=92 => {
                // Branches double as call/return sites: every few of them
                // push or pop a frame, moving the hot window.
                match rng.next() % 8 {
                    0 => sp = (sp - (16 + rng.next() % 16)).max(STACK_FLOOR + 64),
                    1 => sp = (sp + 16 + rng.next() % 16).min(STACK_FLOOR + (1 << 14)),
                    _ => {}
                }
                TraceRecord::branch(pc, &[reg(&mut rng)])
            }
            _ => {
                let a = Loc::fp((rng.next() % 8) as u8);
                let b = Loc::fp((rng.next() % 8) as u8);
                TraceRecord::compute(pc, OpClass::FpMul, &[a, b], Loc::fp((rng.next() % 8) as u8))
            }
        };
        writer.write_record(&record)?;
    }
    writer.finish()
}

/// The pre-optimization pipeline: per-record decode into the flat live
/// well, one record at a time.
fn run_before(path: &Path, config: &AnalysisConfig) -> AnalysisReport {
    let file = File::open(path).expect("benchmark trace must open");
    let reader = TraceReader::new(BufReader::new(file))
        .expect("benchmark trace must parse")
        .with_per_record_decode();
    let mut analyzer = FlatLiveWell::new(config.clone());
    for record in reader {
        let record = record.expect("benchmark trace must decode");
        analyzer.process(&record);
    }
    analyzer.finish()
}

/// The PR 4 decode baseline: buffered reads and the scalar varint kernel,
/// block decode and analysis strictly back to back on one thread.
fn run_decode_before(path: &Path, config: &AnalysisConfig) -> AnalysisReport {
    let file = File::open(path).expect("benchmark trace must open");
    let mut reader = TraceReader::new(BufReader::new(file))
        .expect("benchmark trace must parse")
        .with_scalar_block_decode();
    let mut analyzer = LiveWell::new(config.clone());
    let mut block = Vec::new();
    loop {
        block.clear();
        let n = reader
            .read_block(&mut block)
            .expect("benchmark trace must decode");
        if n == 0 {
            break;
        }
        analyzer.process_slice(&block);
    }
    analyzer.finish()
}

/// The overhauled decode pipeline: the trace is memory-mapped, varints
/// decode through the SWAR kernel, and a helper thread CRC-checks and
/// decodes chunk N+1 while the analyzer consumes chunk N.
fn run_decode_after(path: &Path, config: &AnalysisConfig) -> AnalysisReport {
    let source = TraceSource::mapped_file(path).expect("benchmark trace must map");
    let reader = TraceReader::from_source(source).expect("benchmark trace must parse");
    let mut analyzer = LiveWell::new(config.clone());
    let mut pipeline = DecodeAhead::spawn(reader, None).expect("decode-ahead thread must spawn");
    while let Some(batch) = pipeline.next_batch() {
        let batch = batch.expect("benchmark trace must decode");
        analyzer.process_slice(&batch);
        pipeline.recycle(batch);
    }
    pipeline.finish();
    analyzer.finish()
}

/// The optimized pipeline: block decode feeding `process_slice`.
fn run_after(path: &Path, config: &AnalysisConfig) -> AnalysisReport {
    let file = File::open(path).expect("benchmark trace must open");
    let mut reader = TraceReader::new(BufReader::new(file)).expect("benchmark trace must parse");
    let mut analyzer = LiveWell::new(config.clone());
    let mut block = Vec::new();
    loop {
        block.clear();
        let n = reader
            .read_block(&mut block)
            .expect("benchmark trace must decode");
        if n == 0 {
            break;
        }
        analyzer.process_slice(&block);
    }
    analyzer.finish()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let records = if quick { QUICK_RECORDS } else { FULL_RECORDS };
    let reps = if quick { 2 } else { 5 };
    let study = Study::from_env();
    fs::create_dir_all(study.out_dir()).expect("out dir must be creatable");

    let trace_path: PathBuf = study.out_dir().join(if quick {
        "hotpath.quick.trace"
    } else {
        "hotpath.trace"
    });
    let written = write_trace(&trace_path, records, 0x9e37_79b9, None).expect("trace write");
    assert_eq!(written, records);
    let bytes = fs::metadata(&trace_path).expect("trace metadata").len();
    println!(
        "hotpath: {} records, {} MB on disk, {} reps per leg{}",
        thousands(records),
        bytes / (1024 * 1024),
        reps,
        if quick { " (quick)" } else { "" }
    );

    // No renaming: every store's Ddest term forces a live-well lookup, the
    // worst realistic case for the memory table.
    let config = AnalysisConfig::dataflow_limit()
        .with_renames(RenameSet::none())
        .with_segments(SegmentMap::new(HEAP_BASE, STACK_FLOOR));

    // Alternate the legs and keep each one's minimum: single-shot wall
    // clocks on a shared box swing by 2x.
    let mut before_ns = u64::MAX;
    let mut after_ns = u64::MAX;
    let mut report_json = String::new();
    for rep in 0..reps {
        let start = Instant::now();
        let before = run_before(&trace_path, &config);
        let before_elapsed = start.elapsed().as_nanos() as u64;

        let start = Instant::now();
        let after = run_after(&trace_path, &config);
        let after_elapsed = start.elapsed().as_nanos() as u64;

        let before_json = before.to_json();
        let after_json = after.to_json();
        assert_eq!(
            before_json, after_json,
            "paged/block pipeline must produce a byte-identical report"
        );
        report_json = after_json;
        before_ns = before_ns.min(before_elapsed);
        after_ns = after_ns.min(after_elapsed);
        println!(
            "  rep {}: before {:>8.1} ms   after {:>8.1} ms",
            rep + 1,
            before_elapsed as f64 / 1e6,
            after_elapsed as f64 / 1e6,
        );
    }

    let speedup = before_ns as f64 / after_ns.max(1) as f64;
    println!(
        "hotpath: before {:.1} ms, after {:.1} ms — {speedup:.2}x",
        before_ns as f64 / 1e6,
        after_ns as f64 / 1e6,
    );

    let report_name = if quick {
        "hotpath.quick.report.json"
    } else {
        "hotpath.report.json"
    };
    let report_path = study.out_dir().join(report_name);
    paragraph_core::artifact::write_atomic_bytes(
        &report_path,
        format!("{report_json}\n").as_bytes(),
    )
    .expect("report artifact write");
    println!("report: {}", report_path.display());

    let line = format!(
        concat!(
            "{{\"bench\":\"hotpath-block-decode\",\"mode\":\"{}\",\"records\":{},",
            "\"trace_bytes\":{},\"jobs\":1,\"before_ns\":{},\"after_ns\":{},\"speedup\":{:.2}}}\n"
        ),
        if quick { "quick" } else { "full" },
        records,
        bytes,
        before_ns,
        after_ns,
        speedup,
    );
    paragraph_bench::append_bench_row(Path::new("BENCH.hotpath.json"), &line)
        .expect("bench log append");

    // ---- decoder overhaul leg ------------------------------------------
    // Same trace, the decode data path before and after its overhaul:
    // buffered reads + scalar varints back to back versus mmap + SWAR
    // varints with decode-ahead overlapping analysis. Byte-identical
    // reports are asserted every rep before any timing is kept.
    let mut dec_before_ns = u64::MAX;
    let mut dec_after_ns = u64::MAX;
    for rep in 0..reps {
        let start = Instant::now();
        let before = run_decode_before(&trace_path, &config);
        let before_elapsed = start.elapsed().as_nanos() as u64;

        let start = Instant::now();
        let after = run_decode_after(&trace_path, &config);
        let after_elapsed = start.elapsed().as_nanos() as u64;

        assert_eq!(
            before.to_json(),
            after.to_json(),
            "mmap/SWAR/decode-ahead pipeline must produce a byte-identical report"
        );
        dec_before_ns = dec_before_ns.min(before_elapsed);
        dec_after_ns = dec_after_ns.min(after_elapsed);
        println!(
            "  rep {}: scalar+buffered {:>8.1} ms   swar+mmap+ahead {:>8.1} ms",
            rep + 1,
            before_elapsed as f64 / 1e6,
            after_elapsed as f64 / 1e6,
        );
    }
    let dec_speedup = dec_before_ns as f64 / dec_after_ns.max(1) as f64;
    println!(
        "hotpath-decode: before {:.1} ms, after {:.1} ms — {dec_speedup:.2}x",
        dec_before_ns as f64 / 1e6,
        dec_after_ns as f64 / 1e6,
    );
    let line = format!(
        concat!(
            "{{\"bench\":\"hotpath-decode\",\"mode\":\"{}\",\"records\":{},",
            "\"trace_bytes\":{},\"jobs\":1,\"before_ns\":{},\"after_ns\":{},\"speedup\":{:.2}}}\n"
        ),
        if quick { "quick" } else { "full" },
        records,
        bytes,
        dec_before_ns,
        dec_after_ns,
        dec_speedup,
    );
    paragraph_bench::append_bench_row(Path::new("BENCH.hotpath.json"), &line)
        .expect("bench log append");
    if !quick {
        let _ = fs::remove_file(&trace_path);
    }

    // ---- parallel analyze leg ------------------------------------------
    // A second trace with a conservative-syscall cadence: syscalls are the
    // firewall cut points `analyze_parallel` shards at (the block-decode
    // trace above has none and stays byte-stable for the committed
    // golden). Decoded once up front — this leg measures analysis only.
    let par_path: PathBuf = study.out_dir().join(if quick {
        "hotpath.parallel.quick.trace"
    } else {
        "hotpath.parallel.trace"
    });
    let written =
        write_trace(&par_path, records, 0x51ed_270b, Some(10_000)).expect("parallel trace write");
    assert_eq!(written, records);
    let mut all: Vec<TraceRecord> = Vec::with_capacity(records as usize);
    {
        let file = File::open(&par_path).expect("parallel trace must open");
        let mut reader = TraceReader::new(BufReader::new(file)).expect("parallel trace must parse");
        let mut block = Vec::new();
        loop {
            block.clear();
            let n = reader
                .read_block(&mut block)
                .expect("parallel trace must decode");
            if n == 0 {
                break;
            }
            all.extend_from_slice(&block);
        }
    }

    let mut seq_ns = u64::MAX;
    let mut par_ns = [u64::MAX; 2];
    const PAR_JOBS: [usize; 2] = [4, 8];
    for rep in 0..reps {
        let start = Instant::now();
        let sequential = {
            let mut analyzer = LiveWell::new(config.clone());
            analyzer.process_slice(&all);
            analyzer.finish()
        };
        let seq_elapsed = start.elapsed().as_nanos() as u64;
        seq_ns = seq_ns.min(seq_elapsed);
        let seq_json = sequential.to_json();

        print!(
            "  rep {}: seq {:>8.1} ms",
            rep + 1,
            seq_elapsed as f64 / 1e6
        );
        for (slot, jobs) in PAR_JOBS.iter().enumerate() {
            let start = Instant::now();
            let parallel = analyze_parallel(&all, &config, *jobs);
            let elapsed = start.elapsed().as_nanos() as u64;
            par_ns[slot] = par_ns[slot].min(elapsed);
            assert_eq!(
                seq_json,
                parallel.to_json(),
                "--jobs {jobs} must produce a byte-identical report"
            );
            print!("   jobs{jobs} {:>8.1} ms", elapsed as f64 / 1e6);
        }
        println!();
    }

    let par4_ns = par_ns[0];
    let par_speedup = seq_ns as f64 / par4_ns.max(1) as f64;
    println!(
        "hotpath-parallel: seq {:.1} ms, jobs4 {:.1} ms, jobs8 {:.1} ms — {par_speedup:.2}x at 4 jobs",
        seq_ns as f64 / 1e6,
        par4_ns as f64 / 1e6,
        par_ns[1] as f64 / 1e6,
    );

    let line = format!(
        concat!(
            "{{\"bench\":\"hotpath-parallel-analyze\",\"mode\":\"{}\",\"records\":{},",
            "\"jobs\":4,\"before_ns\":{},\"after_ns\":{},\"speedup\":{:.2}}}\n"
        ),
        if quick { "quick" } else { "full" },
        records,
        seq_ns,
        par4_ns,
        par_speedup,
    );
    paragraph_bench::append_bench_row(Path::new("BENCH.hotpath.json"), &line)
        .expect("bench log append");
    if !quick {
        let _ = fs::remove_file(&par_path);
    }
}

//! Machine-generation study (extension).
//!
//! The paper closes by asking what "the next several generations of
//! superscalar processors" can exploit of the parallelism it measures.
//! This study answers with the toolkit's machine presets: a ladder from a
//! scalar in-order pipeline through progressively wider out-of-order cores
//! up to the abstract dataflow machine, each a bundle of window size,
//! issue width, renaming, branch prediction and memory disambiguation.

use paragraph_bench::{parallelism, Study};
use paragraph_core::analyze_refs;
use paragraph_core::machine::Machine;
use paragraph_workloads::WorkloadId;

fn main() {
    let study = Study::from_env();
    let machines = Machine::generations();
    println!("Machine Generation Study: sustained operations per cycle");
    println!();
    for machine in &machines {
        println!("  {machine}");
    }
    println!();
    print!("{:<11}", "Benchmark");
    for machine in &machines {
        print!(" {:>10}", machine.name());
    }
    println!();
    println!("{:-<78}", "");
    for id in WorkloadId::ALL {
        let (records, segments) = study
            .collect(id)
            .unwrap_or_else(|e| panic!("trace collection failed: {e}"));
        print!("{:<11}", id.name());
        for machine in &machines {
            let config = machine.configure().with_segments(segments);
            let report = analyze_refs(&records, &config);
            print!(" {:>10}", parallelism(report.available_parallelism()));
        }
        println!();
    }
    println!();
    println!(
        "Each column is a machine generation; each row should rise toward the\n\
         dataflow limit. The gap between the widest practical machine and the\n\
         dataflow column is the paper's headline: exposing the measured\n\
         parallelism needs mechanisms beyond bigger windows."
    );
}

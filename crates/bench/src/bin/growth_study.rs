//! Parallelism-growth study: how the available parallelism accumulates
//! with trace length.
//!
//! The paper, on its 100M-instruction truncation: "Had we [run to
//! completion], we believe that the benchmarks with large amounts of
//! parallelism ... would have continued to show an increase in the
//! available parallelism ... Benchmarks with smaller amounts of parallelism
//! would probably reveal approximately the same amount." This study
//! measures that claim directly with the analyzer's running snapshots: one
//! pass per workload, sampling available parallelism at doubling trace
//! prefixes.

use paragraph_bench::{parallelism, Study};
use paragraph_core::{AnalysisConfig, LiveWell};
use paragraph_workloads::WorkloadId;

fn main() {
    let study = Study::from_env();
    println!("Parallelism Growth Study: available parallelism at trace prefixes");
    println!("(dataflow limit; one streaming pass per workload)");
    println!();
    let marks: Vec<u64> = (10..=22).map(|e| 1u64 << e).collect();
    print!("{:<11}", "Benchmark");
    for &m in &marks {
        if m >= 1 << 14 {
            print!(" {:>9}", format!("{}k", m >> 10));
        } else {
            print!(" {:>9}", m);
        }
    }
    println!(" {:>10}", "full");
    println!("{:-<140}", "");
    for id in WorkloadId::ALL {
        let workload = study.workload(id);
        let mut vm = workload.vm();
        let config = AnalysisConfig::dataflow_limit().with_segments(vm.segment_map());
        let mut analyzer = LiveWell::new(config);
        let mut samples: Vec<Option<f64>> = vec![None; marks.len()];
        let marks_ref = &marks;
        let samples_ref = &mut samples;
        let mut next = 0usize;
        vm.run_traced(study.fuel(), |record| {
            analyzer.process(record);
            let (seen, _, _, par) = analyzer.snapshot();
            if next < marks_ref.len() && seen == marks_ref[next] {
                samples_ref[next] = Some(par);
                next += 1;
            }
        })
        .unwrap_or_else(|e| panic!("{id}: {e}"));
        let report = analyzer.finish();
        print!("{:<11}", id.name());
        for sample in &samples {
            match sample {
                Some(par) => print!(" {:>9}", parallelism(*par)),
                None => print!(" {:>9}", "-"),
            }
        }
        println!(" {:>10}", parallelism(report.available_parallelism()));
    }
    println!();
    println!(
        "The paper's expectation holds: rows with little parallelism flatten\n\
         early (their critical path grows with the trace), while the\n\
         parallelism-rich rows keep climbing to the end of the trace — which\n\
         is why absolute tops depend on trace length while rankings do not."
    );
}

//! Supervision primitives for fault-isolated sweeps: the typed per-cell
//! error taxonomy, per-cell result statuses, deterministic retry backoff,
//! and the environment-driven cell fault injector the CI smoke job uses.
//!
//! The scheduler (see [`run_sweep`](crate::scheduler::run_sweep)) wraps
//! every cell in `catch_unwind`, converts failures into [`CellError`],
//! retries with [`backoff_delay`], and quarantines cells that exhaust
//! their retries — the sweep itself always completes, reporting a
//! [`CellStatus`] per cell instead of dying on the first fault.

use std::fmt;
use std::time::Duration;

/// Why one sweep cell failed. The taxonomy follows the failure domains a
/// cell can actually die in: generating the trace (VM), decoding a stored
/// trace, checkpoint/stage I/O, arena admission, or an uncategorized panic
/// captured at the `catch_unwind` boundary.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CellError {
    /// The workload's VM faulted while generating the trace.
    Vm(String),
    /// A stored trace failed to decode.
    TraceDecode(String),
    /// Checkpoint or stage-marker I/O failed in a way the cell could not
    /// degrade around.
    Checkpoint(String),
    /// The trace arena could not admit the workload's trace.
    ArenaBudget(String),
    /// The cell panicked; the payload was captured at the worker's
    /// `catch_unwind` boundary.
    Panic(String),
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Vm(msg) => write!(f, "VM fault: {msg}"),
            CellError::TraceDecode(msg) => write!(f, "trace decode failed: {msg}"),
            CellError::Checkpoint(msg) => write!(f, "checkpoint failed: {msg}"),
            CellError::ArenaBudget(msg) => write!(f, "arena admission failed: {msg}"),
            CellError::Panic(msg) => write!(f, "cell panicked: {msg}"),
        }
    }
}

impl std::error::Error for CellError {}

/// How one cell ended up after supervision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Succeeded on the first attempt (or was restored from a stage
    /// marker).
    Ok,
    /// Succeeded after at least one failed attempt.
    Retried,
    /// Exhausted its retries; the sweep completed without it.
    Quarantined,
}

impl CellStatus {
    /// The manifest encoding (`ok` | `retried` | `quarantined`).
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Retried => "retried",
            CellStatus::Quarantined => "quarantined",
        }
    }
}

impl fmt::Display for CellStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Longest single backoff the supervisor will sleep, whatever the
/// configured base and attempt count.
pub const MAX_BACKOFF_MS: u64 = 10_000;

/// The delay before retry number `attempt` (1-based: the delay after the
/// first failure is `attempt = 1`) of the cell at `cell_index`.
///
/// Bounded exponential backoff — `base_ms << (attempt - 1)` capped at
/// [`MAX_BACKOFF_MS`] — plus a jitter in `[0, base_ms]` derived from the
/// cell index through SplitMix64. The jitter decorrelates cells that fail
/// together (say, a full disk) without any wall-clock entropy: the same
/// sweep retries on the same schedule every run.
pub fn backoff_delay(base_ms: u64, attempt: u32, cell_index: usize) -> Duration {
    if base_ms == 0 {
        return Duration::ZERO;
    }
    let exp = attempt.saturating_sub(1).min(10);
    let scaled = base_ms.checked_shl(exp).unwrap_or(MAX_BACKOFF_MS);
    let jitter = splitmix64(cell_index as u64 ^ 0x5157_4545_5021) % (base_ms + 1);
    Duration::from_millis(scaled.min(MAX_BACKOFF_MS).saturating_add(jitter))
}

/// SplitMix64's output function: a high-quality 64-bit mix.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which [`CellError`] the fault injector raises (or `Panic`, raised as an
/// actual `panic!` so the `catch_unwind` boundary is exercised end to end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` inside the cell — the default, the worst case.
    Panic,
    /// A typed VM fault.
    Vm,
    /// A typed trace-decode failure.
    Decode,
    /// A typed checkpoint failure.
    Checkpoint,
    /// A typed arena-admission failure.
    Arena,
}

/// A deliberate per-cell fault, parsed from `PARAGRAPH_FAULT_CELL`:
///
/// ```text
/// PARAGRAPH_FAULT_CELL=<workload>@<label>[:<fails>[:<kind>]]
/// ```
///
/// The matching cell fails its first `fails` attempts (default: all of
/// them, i.e. guaranteed quarantine) with a fault of `kind`
/// (`panic` | `vm` | `decode` | `checkpoint` | `arena`, default `panic`).
/// This is the sweep-level companion of
/// [`FaultPlan`](paragraph_trace::faultinject::FaultPlan): it exists so
/// tests and the CI smoke job can force one cell down any failure path
/// and assert the siblings' artifacts never change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Workload name of the targeted cell.
    pub workload: String,
    /// Configuration label of the targeted cell.
    pub label: String,
    /// Number of leading attempts to fail.
    pub fails: u32,
    /// Failure mode to raise.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Reads `PARAGRAPH_FAULT_CELL`; `None` when unset or unparsable (an
    /// unparsable spec also warns — a typo must not silently disable the
    /// fault the test meant to inject).
    pub fn from_env() -> Option<FaultSpec> {
        let raw = std::env::var("PARAGRAPH_FAULT_CELL").ok()?;
        let spec = FaultSpec::parse(&raw);
        if spec.is_none() {
            eprintln!("PARAGRAPH_FAULT_CELL: ignoring unparsable spec {raw:?}");
        }
        spec
    }

    /// Parses `<workload>@<label>[:<fails>[:<kind>]]`.
    pub fn parse(raw: &str) -> Option<FaultSpec> {
        let mut parts = raw.split(':');
        let target = parts.next()?;
        let (workload, label) = target.split_once('@')?;
        if workload.is_empty() || label.is_empty() {
            return None;
        }
        let fails = match parts.next() {
            Some(n) => n.parse().ok()?,
            None => u32::MAX,
        };
        let kind = match parts.next() {
            None => FaultKind::Panic,
            Some("panic") => FaultKind::Panic,
            Some("vm") => FaultKind::Vm,
            Some("decode") => FaultKind::Decode,
            Some("checkpoint") => FaultKind::Checkpoint,
            Some("arena") => FaultKind::Arena,
            Some(_) => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(FaultSpec {
            workload: workload.to_owned(),
            label: label.to_owned(),
            fails,
            kind,
        })
    }

    /// Whether this spec targets the cell `workload@label`.
    pub fn targets(&self, workload: &str, label: &str) -> bool {
        self.workload == workload && self.label == label
    }

    /// Raises the configured fault if this spec targets the cell and
    /// `attempt` (1-based) is within the failing window. Called inside the
    /// worker's `catch_unwind` boundary, so the `panic` kind exercises the
    /// exact path a real analyzer bug would take.
    ///
    /// # Errors
    ///
    /// The configured [`CellError`] for a targeted attempt.
    ///
    /// # Panics
    ///
    /// With [`FaultKind::Panic`] on a targeted attempt (by design).
    pub fn inject(&self, workload: &str, label: &str, attempt: u32) -> Result<(), CellError> {
        if !self.targets(workload, label) || attempt > self.fails {
            return Ok(());
        }
        let at = format!("injected fault for {workload}@{label} attempt {attempt}");
        match self.kind {
            FaultKind::Panic => panic!("{at}"),
            FaultKind::Vm => Err(CellError::Vm(at)),
            FaultKind::Decode => Err(CellError::TraceDecode(at)),
            FaultKind::Checkpoint => Err(CellError::Checkpoint(at)),
            FaultKind::Arena => Err(CellError::ArenaBudget(at)),
        }
    }
}

/// Renders a `catch_unwind` payload as a message: the `&str`/`String`
/// payloads real `panic!`s carry, or a placeholder for exotic payloads.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_owned()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let a = backoff_delay(25, 1, 3);
        assert_eq!(a, backoff_delay(25, 1, 3), "same inputs, same delay");
        assert!(backoff_delay(25, 2, 3) > a, "delay grows with attempts");
        assert_ne!(
            backoff_delay(25, 1, 3),
            backoff_delay(25, 1, 4),
            "jitter separates cells"
        );
        assert!(backoff_delay(25, 63, 0) <= Duration::from_millis(MAX_BACKOFF_MS + 25));
        assert_eq!(backoff_delay(0, 5, 9), Duration::ZERO);
    }

    #[test]
    fn fault_spec_parses_the_documented_grammar() {
        let full = FaultSpec::parse("eqntott@w64:2:vm").unwrap();
        assert_eq!(full.workload, "eqntott");
        assert_eq!(full.label, "w64");
        assert_eq!(full.fails, 2);
        assert_eq!(full.kind, FaultKind::Vm);

        let defaults = FaultSpec::parse("xlisp@dataflow").unwrap();
        assert_eq!(defaults.fails, u32::MAX);
        assert_eq!(defaults.kind, FaultKind::Panic);

        assert_eq!(FaultSpec::parse("xlisp@w64:1").unwrap().fails, 1);
        assert!(FaultSpec::parse("no-separator").is_none());
        assert!(FaultSpec::parse("@w64").is_none());
        assert!(FaultSpec::parse("x@").is_none());
        assert!(FaultSpec::parse("x@y:notanumber").is_none());
        assert!(FaultSpec::parse("x@y:1:plasma").is_none());
        assert!(FaultSpec::parse("x@y:1:vm:extra").is_none());
    }

    #[test]
    fn inject_fails_only_the_leading_attempts_of_the_target() {
        let spec = FaultSpec::parse("eqntott@w64:2:decode").unwrap();
        assert!(spec.inject("xlisp", "w64", 1).is_ok(), "other workload");
        assert!(spec.inject("eqntott", "full", 1).is_ok(), "other label");
        assert!(matches!(
            spec.inject("eqntott", "w64", 1),
            Err(CellError::TraceDecode(_))
        ));
        assert!(spec.inject("eqntott", "w64", 2).is_err());
        assert!(spec.inject("eqntott", "w64", 3).is_ok(), "past the window");
    }

    #[test]
    fn panic_kind_panics_and_is_catchable() {
        let spec = FaultSpec::parse("x@y").unwrap();
        let caught = std::panic::catch_unwind(|| spec.inject("x", "y", 1));
        let message = panic_message(caught.expect_err("must panic"));
        assert!(message.contains("injected fault for x@y"));
    }

    #[test]
    fn cell_error_display_names_the_domain() {
        assert!(CellError::Vm("boom".into())
            .to_string()
            .contains("VM fault"));
        assert!(CellError::Panic("p".into())
            .to_string()
            .contains("panicked"));
        assert_eq!(CellStatus::Quarantined.to_string(), "quarantined");
    }
}

//! Bounded work-stealing scheduler for (workload × configuration) sweeps.
//!
//! A sweep is a grid of independent **cells**: one analysis pass of one
//! workload's trace under one configuration. Cells sharing a workload share
//! a single decode through the [`TraceArena`]; the scheduler fans the cells
//! out across `jobs` worker threads and collects results **by cell index**,
//! so the output is byte-identical no matter how many workers ran or how
//! work was stolen.
//!
//! Each completed cell is persisted as a *stage marker* (an exact textual
//! encoding of the cell's artifacts) via the study's checkpoint directory,
//! so an interrupted sweep resumes at cell granularity: restored cells are
//! not recomputed, and their artifacts are byte-identical to a fresh run's.
//!
//! Cells are **supervised** (see `docs/supervision.md`): every cell runs
//! inside a `catch_unwind` boundary, failures become typed
//! [`CellError`]s, failed cells are retried with bounded deterministic
//! backoff, and cells that exhaust their retries are *quarantined* — the
//! sweep completes with every healthy cell's artifacts byte-identical to a
//! fault-free run's, plus a per-cell [`CellStatus`] degradation report.

use crate::arena::{ArenaStats, TraceArena};
use crate::supervisor::{backoff_delay, panic_message, CellError, CellStatus, FaultSpec};
use crate::Study;
use paragraph_core::telemetry::{self, timeline, Value};
use paragraph_core::{AnalysisConfig, LiveWell, ParallelismProfile};
use paragraph_workloads::WorkloadId;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// One unit of sweep work: analyze `workload`'s trace under `config`.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Workload whose trace this cell analyzes.
    pub workload: WorkloadId,
    /// Short configuration label, unique within the workload (names the
    /// stage marker and output artifacts; e.g. `w64` or `dataflow`).
    pub label: String,
    /// Analysis configuration; the workload's segment map is applied by
    /// the scheduler, so build it segment-free.
    pub config: AnalysisConfig,
}

impl SweepCell {
    /// Creates a cell.
    pub fn new(
        workload: WorkloadId,
        label: impl Into<String>,
        config: AnalysisConfig,
    ) -> SweepCell {
        SweepCell {
            workload,
            label: label.into(),
            config,
        }
    }

    /// Stage-marker key: workload plus label, filename-safe.
    fn stage_key(&self) -> String {
        let mut key = format!("{}@{}", self.workload.name(), self.label);
        key.retain(|c| c.is_ascii_alphanumeric() || matches!(c, '@' | '-' | '_' | '.'));
        key
    }
}

/// Headline numbers of one analyzed cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Trace records processed.
    pub records: u64,
    /// Operations placed in the DDG.
    pub placed: u64,
    /// Critical path length (levels).
    pub critical_path: u64,
    /// Available parallelism (placed / critical path).
    pub parallelism: f64,
    /// Live-well evictions (accuracy caveat when non-zero).
    pub live_well_evictions: u64,
    /// Times the instruction window constrained placement.
    pub window_stalls: u64,
    /// Wall-clock nanoseconds of the analysis pass (from the original
    /// computation, even when the cell was restored from a stage marker).
    pub wall_ns: u64,
}

/// A completed cell: exact artifacts plus provenance.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's workload.
    pub workload: WorkloadId,
    /// The cell's configuration label.
    pub label: String,
    /// Headline metrics.
    pub metrics: CellMetrics,
    /// The exact parallelism profile (drives CSVs and ASCII plots).
    pub profile: ParallelismProfile,
    /// The full report as JSON, byte-identical across runs.
    pub report_json: String,
    /// True if this cell was restored from a stage marker instead of
    /// recomputed.
    pub from_stage: bool,
}

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Arena LRU budget in bytes; `0` means the environment default
    /// ([`TraceArena::from_env`]).
    pub arena_budget_bytes: usize,
    /// Load completed cells from stage markers and store new ones, making
    /// interrupted sweeps restartable at cell granularity.
    pub reuse_stages: bool,
    /// Failed-cell retries before quarantine (`0` quarantines on the first
    /// failure).
    pub retries: u32,
    /// Base backoff between retries, in milliseconds; see
    /// [`backoff_delay`] for the growth and jitter rules.
    pub retry_backoff_ms: u64,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            jobs: 0,
            arena_budget_bytes: 0,
            reuse_stages: true,
            retries: 2,
            retry_backoff_ms: 25,
        }
    }
}

/// One supervised cell's final state: its outcome when it succeeded, its
/// error when it was quarantined, and the supervision provenance either
/// way.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell's workload.
    pub workload: WorkloadId,
    /// The cell's configuration label.
    pub label: String,
    /// How supervision left the cell.
    pub status: CellStatus,
    /// Attempts consumed (0 when restored from a stage marker).
    pub attempts: u32,
    /// The final error, for quarantined cells.
    pub error: Option<String>,
    /// The artifacts, for successful cells.
    pub outcome: Option<CellOutcome>,
}

impl CellResult {
    /// The successful outcome, if the cell was not quarantined.
    pub fn outcome(&self) -> Option<&CellOutcome> {
        self.outcome.as_ref()
    }

    /// True when the cell exhausted its retries.
    pub fn is_quarantined(&self) -> bool {
        self.status == CellStatus::Quarantined
    }
}

/// Everything a sweep produced, in the exact order of the input cells.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-cell results, index-aligned with the input cells.
    pub cells: Vec<CellResult>,
    /// Wall-clock nanoseconds for the whole sweep.
    pub wall_ns: u64,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Arena traffic (misses count trace generations).
    pub arena: ArenaStats,
}

impl SweepOutcome {
    /// Number of quarantined cells (0 for a fully healthy sweep).
    pub fn quarantined(&self) -> usize {
        self.cells.iter().filter(|c| c.is_quarantined()).count()
    }

    /// The successful outcomes, index-aligned gaps skipped.
    pub fn ok_cells(&self) -> impl Iterator<Item = &CellOutcome> {
        self.cells.iter().filter_map(|c| c.outcome.as_ref())
    }
}

/// Version tag of the stage-marker format; markers with any other first
/// line are ignored and the cell is recomputed.
const MARKER_MAGIC: &str = "PGSWEEP1";

fn encode_marker(outcome: &CellOutcome) -> String {
    let m = &outcome.metrics;
    format!(
        "{MARKER_MAGIC}\n{} {} {} {} {} {} {}\n{}\n{}",
        m.records,
        m.placed,
        m.critical_path,
        m.live_well_evictions,
        m.window_stalls,
        m.parallelism.to_bits(),
        m.wall_ns,
        outcome.profile.encode(),
        outcome.report_json,
    )
}

fn decode_marker(cell: &SweepCell, text: &str) -> Option<CellOutcome> {
    let mut lines = text.splitn(4, '\n');
    if lines.next()? != MARKER_MAGIC {
        return None;
    }
    let mut fields = lines.next()?.split_ascii_whitespace();
    let records = fields.next()?.parse().ok()?;
    let placed = fields.next()?.parse().ok()?;
    let critical_path = fields.next()?.parse().ok()?;
    let live_well_evictions = fields.next()?.parse().ok()?;
    let window_stalls = fields.next()?.parse().ok()?;
    let parallelism = f64::from_bits(fields.next()?.parse().ok()?);
    let wall_ns = fields.next()?.parse().ok()?;
    if fields.next().is_some() {
        return None;
    }
    let profile = ParallelismProfile::decode(lines.next()?)?;
    let report_json = lines.next()?.to_owned();
    if report_json.is_empty() {
        return None;
    }
    Some(CellOutcome {
        workload: cell.workload,
        label: cell.label.clone(),
        metrics: CellMetrics {
            records,
            placed,
            critical_path,
            parallelism,
            live_well_evictions,
            window_stalls,
            wall_ns,
        },
        profile,
        report_json,
        from_stage: true,
    })
}

fn analyze_cell(
    study: &Study,
    cell: &SweepCell,
    arena: &TraceArena,
) -> Result<CellOutcome, CellError> {
    let trace = arena.get(study, cell.workload)?;
    let config = cell.config.clone().with_segments(trace.segments);
    let started = Instant::now();
    // Timeline slice covering the analysis only (not the arena fetch, which
    // may block on another worker's decode — attributing that wait to the
    // cell would make identical cells look slower under contention).
    let mut tspan = match timeline::timeline_active() {
        Some(tl) => tl.span_labeled(
            "sweep.cell",
            Some(&format!("{}@{}", cell.workload.name(), cell.label)),
        ),
        None => timeline::timeline_span("sweep.cell"),
    };
    let mut analyzer = LiveWell::new(config);
    analyzer.process_slice(&trace.records);
    let window_stalls = analyzer.window_stalls();
    let report = analyzer.finish();
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let metrics = CellMetrics {
        records: report.total_records(),
        placed: report.placed_ops(),
        critical_path: report.critical_path_length(),
        parallelism: report.available_parallelism(),
        live_well_evictions: report.live_well_evictions(),
        window_stalls,
        wall_ns,
    };
    if let Some(registry) = telemetry::active() {
        registry.record_span(
            "sweep.cell",
            wall_ns,
            &[
                ("workload", Value::Str(cell.workload.name())),
                ("config", Value::Str(&cell.label)),
                ("records", Value::U64(metrics.records)),
                ("critical_path", Value::U64(metrics.critical_path)),
            ],
        );
        registry.counter("sweep.cells_analyzed").add(1);
    }
    tspan.arg("records", metrics.records);
    tspan.arg("critical_path", metrics.critical_path);
    drop(tspan);
    Ok(CellOutcome {
        workload: cell.workload,
        label: cell.label.clone(),
        metrics,
        profile: report.profile().clone(),
        report_json: report.to_json(),
        from_stage: false,
    })
}

/// One supervised attempt at a cell: the fault injector (if armed) and the
/// analysis run inside a `catch_unwind` boundary, so a panicking cell —
/// analyzer bug, VM bug, injected fault — becomes a typed
/// [`CellError::Panic`] instead of taking down the worker and its queued
/// siblings.
fn run_cell(
    study: &Study,
    cell: &SweepCell,
    arena: &TraceArena,
    fault: Option<&FaultSpec>,
    attempt: u32,
) -> Result<CellOutcome, CellError> {
    let attempt_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(spec) = fault {
            spec.inject(cell.workload.name(), &cell.label, attempt)?;
        }
        analyze_cell(study, cell, arena)
    }));
    match attempt_result {
        Ok(result) => result,
        Err(payload) => Err(CellError::Panic(panic_message(payload))),
    }
}

fn effective_jobs(requested: usize, cells: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    jobs.clamp(1, cells.max(1))
}

/// One cell's supervision state: how many attempts it has consumed and how
/// the last one ended.
#[derive(Debug, Default)]
struct CellSlot {
    attempts: u32,
    result: Option<Result<CellOutcome, CellError>>,
}

/// Runs `cells` under `study`, fanning them across worker threads, and
/// returns the results in input order (deterministic for any job count).
///
/// `name` scopes the stage markers (and should match the driver: `fig7`,
/// `fig8`, `sweep`, ...). On a sweep that completes with no quarantined
/// cell the markers are cleared, so the next run starts fresh; an
/// interrupted or degraded sweep leaves the completed cells' markers
/// behind for the next attempt to reuse.
///
/// Cells never panic the sweep: each attempt runs inside `catch_unwind`,
/// failures are retried up to [`SweepOptions::retries`] times with
/// deterministic backoff, and cells that exhaust their retries come back
/// as [`CellStatus::Quarantined`] entries with their error attached.
/// `PARAGRAPH_FAULT_CELL` (see [`FaultSpec`]) injects a deliberate fault
/// into one cell for testing.
pub fn run_sweep(
    study: &Study,
    name: &str,
    cells: &[SweepCell],
    opts: &SweepOptions,
) -> SweepOutcome {
    run_sweep_supervised(study, name, cells, opts, FaultSpec::from_env().as_ref())
}

/// [`run_sweep`] with an explicit fault injector (tests construct
/// [`FaultSpec`]s directly instead of racing on the environment).
fn run_sweep_supervised(
    study: &Study,
    name: &str,
    cells: &[SweepCell],
    opts: &SweepOptions,
    fault: Option<&FaultSpec>,
) -> SweepOutcome {
    let started = Instant::now();
    let jobs = effective_jobs(opts.jobs, cells.len());
    let arena = if opts.arena_budget_bytes == 0 {
        TraceArena::from_env()
    } else {
        TraceArena::new(opts.arena_budget_bytes)
    };
    if opts.reuse_stages {
        // Sweep temp files orphaned by a previous crash; completed markers
        // (already renamed into place) are untouched.
        paragraph_core::artifact::clean_orphaned_tmp(&study.checkpoints_dir());
    }

    // Restore stage-cached cells up front; only the rest are scheduled.
    let results: Vec<Mutex<CellSlot>> = cells
        .iter()
        .map(|cell| {
            let restored = opts
                .reuse_stages
                .then(|| study.load_stage(name, &cell.stage_key()))
                .flatten()
                .and_then(|marker| decode_marker(cell, &marker));
            Mutex::new(CellSlot {
                attempts: 0,
                result: restored.map(Ok),
            })
        })
        .collect();
    let pending: Vec<usize> = (0..cells.len())
        .filter(|&i| lock_poison_ok(&results[i]).result.is_none())
        .collect();
    if let Some(registry) = telemetry::active() {
        let restored = cells.len() - pending.len();
        registry
            .counter("sweep.cells_restored")
            .add(restored as u64);
    }

    // Deal contiguous chunks: cells are workload-major, so each worker
    // starts on its own workload and arena traffic stays low; stealing
    // rebalances from the back of a victim's chunk.
    let queues: Vec<Mutex<VecDeque<usize>>> = {
        let chunk = pending.len().div_ceil(jobs.max(1)).max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..jobs).map(|_| VecDeque::new()).collect();
        for (slot, indices) in pending.chunks(chunk).enumerate() {
            queues[slot % jobs].extend(indices.iter().copied());
        }
        queues.into_iter().map(Mutex::new).collect()
    };

    std::thread::scope(|scope| {
        for me in 0..jobs {
            let queues = &queues;
            let results = &results;
            let arena = &arena;
            scope.spawn(move || {
                if let Some(tl) = timeline::timeline_active() {
                    tl.set_thread_name(&format!("worker-{me}"));
                }
                loop {
                    let next = lock_poison_ok_deque(&queues[me]).pop_front().or_else(|| {
                        (1..jobs)
                            .map(|step| (me + step) % jobs)
                            .find_map(|victim| lock_poison_ok_deque(&queues[victim]).pop_back())
                    });
                    let Some(index) = next else {
                        break;
                    };
                    let cell = &cells[index];
                    let attempt = {
                        let mut slot = lock_poison_ok(&results[index]);
                        slot.attempts += 1;
                        slot.attempts
                    };
                    if attempt > 1 {
                        // Close the flow arrow opened when the previous attempt
                        // chose to retry; Perfetto draws it from the failing
                        // worker's lane into this attempt's slice.
                        if let Some(tl) = timeline::timeline_active() {
                            tl.flow_finish("sweep.retry", retry_flow_id(index, attempt - 1));
                        }
                    }
                    match run_cell(study, cell, arena, fault, attempt) {
                        Ok(outcome) => {
                            if opts.reuse_stages {
                                if let Err(e) = study.store_stage(
                                    name,
                                    &cell.stage_key(),
                                    &encode_marker(&outcome),
                                ) {
                                    // Stage persistence is best-effort, like
                                    // harness checkpoints: the sweep itself
                                    // must not die because the disk did.
                                    eprintln!(
                                        "{name}: stage marker for {} failed: {e}",
                                        cell.stage_key()
                                    );
                                }
                            }
                            lock_poison_ok(&results[index]).result = Some(Ok(outcome));
                            if let Some(tl) = timeline::timeline_active() {
                                // Arena counters sampled at cell boundaries:
                                // Perfetto renders them as a stepped
                                // counter-over-time track per sweep.
                                let stats = arena.stats();
                                tl.counter("arena.hits", stats.hits);
                                tl.counter("arena.misses", stats.misses);
                                tl.counter("arena.evictions", stats.evictions);
                            }
                        }
                        Err(err) if attempt <= opts.retries => {
                            eprintln!(
                                "{name}: cell {} attempt {attempt} failed ({err}); retrying",
                                cell.stage_key()
                            );
                            if let Some(registry) = telemetry::active() {
                                registry.counter("sweep.cell_retries").add(1);
                            }
                            if let Some(tl) = timeline::timeline_active() {
                                tl.instant_with_args(
                                    "sweep.retry",
                                    Some(&cell.stage_key()),
                                    &[("attempt", u64::from(attempt))],
                                );
                                tl.flow_start("sweep.retry", retry_flow_id(index, attempt));
                            }
                            // Sleep the backoff here, then requeue: the cell is
                            // never parked in a queue while its backoff runs,
                            // so no sibling burns a slot waiting on it.
                            std::thread::sleep(backoff_delay(
                                opts.retry_backoff_ms,
                                attempt,
                                index,
                            ));
                            lock_poison_ok_deque(&queues[me]).push_back(index);
                        }
                        Err(err) => {
                            eprintln!(
                                "{name}: cell {} quarantined after {attempt} attempt(s): {err}",
                                cell.stage_key()
                            );
                            if let Some(registry) = telemetry::active() {
                                registry.counter("sweep.cells_quarantined").add(1);
                            }
                            if let Some(tl) = timeline::timeline_active() {
                                tl.instant_with_args(
                                    "sweep.quarantine",
                                    Some(&cell.stage_key()),
                                    &[("attempts", u64::from(attempt))],
                                );
                            }
                            lock_poison_ok(&results[index]).result = Some(Err(err));
                        }
                    }
                }
            });
        }
    });

    let cells_out: Vec<CellResult> = results
        .into_iter()
        .zip(cells)
        .map(|(slot, cell)| {
            let slot = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
            let attempts = slot.attempts;
            match slot.result {
                Some(Ok(outcome)) => CellResult {
                    workload: cell.workload,
                    label: cell.label.clone(),
                    status: if attempts > 1 {
                        CellStatus::Retried
                    } else {
                        CellStatus::Ok
                    },
                    attempts,
                    error: None,
                    outcome: Some(outcome),
                },
                Some(Err(err)) => CellResult {
                    workload: cell.workload,
                    label: cell.label.clone(),
                    status: CellStatus::Quarantined,
                    attempts,
                    error: Some(err.to_string()),
                    outcome: None,
                },
                // Unreachable in practice — every dequeued index stores a
                // result — but a lost cell must degrade like any other
                // failure, never panic the collection.
                None => CellResult {
                    workload: cell.workload,
                    label: cell.label.clone(),
                    status: CellStatus::Quarantined,
                    attempts,
                    error: Some("cell finished without a result (worker lost)".to_owned()),
                    outcome: None,
                },
            }
        })
        .collect();
    // Only a fully healthy sweep clears its markers: after a degraded one,
    // the healthy cells' markers let the next attempt recompute just the
    // quarantined cells.
    if opts.reuse_stages && !cells_out.iter().any(CellResult::is_quarantined) {
        study.clear_stages(name);
    }
    SweepOutcome {
        cells: cells_out,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        jobs,
        arena: arena.stats(),
    }
}

/// Deterministic flow-event id tying a retry decision to the attempt it
/// spawns. Depends only on cell index and attempt number, so traces from
/// different job counts normalize identically.
fn retry_flow_id(index: usize, attempt: u32) -> u64 {
    (index as u64) << 8 | u64::from(attempt & 0xff)
}

fn lock_poison_ok<'a>(slot: &'a Mutex<CellSlot>) -> std::sync::MutexGuard<'a, CellSlot> {
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_poison_ok_deque<'a>(
    queue: &'a Mutex<VecDeque<usize>>,
) -> std::sync::MutexGuard<'a, VecDeque<usize>> {
    queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders one cell's telemetry manifest, key-compatible with the
/// per-workload manifests the pre-sweep harness wrote (plus the cell's
/// configuration label and stage provenance).
pub fn cell_manifest_json(cell: &CellOutcome) -> String {
    let m = &cell.metrics;
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"config\":\"{}\",\"records\":{},",
            "\"placed\":{},\"critical_path\":{},\"parallelism\":{:.6},",
            "\"live_well_evictions\":{},\"records_analyzed\":{},",
            "\"wall_ns\":{},\"records_per_sec\":{:.2},",
            "\"window_stalls\":{},\"from_stage\":{}}}\n"
        ),
        cell.workload.name(),
        cell.label,
        m.records,
        m.placed,
        m.critical_path,
        m.parallelism,
        m.live_well_evictions,
        m.records,
        m.wall_ns,
        if m.wall_ns == 0 {
            0.0
        } else {
            m.records as f64 / (m.wall_ns as f64 / 1e9)
        },
        m.window_stalls,
        cell.from_stage,
    )
}

/// Renders a sweep-level telemetry manifest: grid shape, wall time,
/// per-cell timings and supervision status, and arena traffic. Written
/// by the drivers next to their CSV artifacts.
pub fn sweep_manifest_json(name: &str, outcome: &SweepOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"sweep\":\"{name}\",\"jobs\":{},\"cells\":{},\"quarantined\":{},\"wall_ns\":{},",
        outcome.jobs,
        outcome.cells.len(),
        outcome.quarantined(),
        outcome.wall_ns,
    ));
    out.push_str(&format!(
        "\"arena\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"peak_resident_bytes\":{}}},",
        outcome.arena.hits,
        outcome.arena.misses,
        outcome.arena.evictions,
        outcome.arena.peak_resident_bytes,
    ));
    out.push_str("\"cell_results\":[");
    for (i, cell) in outcome.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Quarantined cells report zeroed metrics so the manifest schema
        // stays rectangular for downstream readers.
        let (records, critical_path, parallelism, wall_ns, from_stage) = match &cell.outcome {
            Some(c) => (
                c.metrics.records,
                c.metrics.critical_path,
                c.metrics.parallelism,
                c.metrics.wall_ns,
                c.from_stage,
            ),
            None => (0, 0, 0.0, 0, false),
        };
        out.push_str(&format!(
            concat!(
                "{{\"workload\":\"{}\",\"config\":\"{}\",\"status\":\"{}\",",
                "\"attempts\":{},\"error\":{},\"records\":{},",
                "\"critical_path\":{},\"parallelism\":{:.6},\"wall_ns\":{},",
                "\"from_stage\":{}}}"
            ),
            cell.workload.name(),
            cell.label,
            cell.status,
            cell.attempts,
            match &cell.error {
                Some(e) => format!("\"{}\"", escape_json(e)),
                None => "null".to_owned(),
            },
            records,
            critical_path,
            parallelism,
            wall_ns,
            from_stage,
        ));
    }
    out.push_str("]}\n");
    out
}

/// Minimal JSON string escaping for error messages embedded in the
/// manifest (quotes, backslashes, and control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_core::analyze_slice;
    use std::fs;

    fn temp_study(tag: &str) -> Study {
        let out =
            std::env::temp_dir().join(format!("paragraph-sched-test-{tag}-{}", std::process::id()));
        Study::new(100_000, 2, out)
    }

    /// Unwraps a cell that the test expects to have succeeded.
    fn ok(cell: &CellResult) -> &CellOutcome {
        cell.outcome.as_ref().unwrap_or_else(|| {
            panic!(
                "cell {}@{} was quarantined: {:?}",
                cell.workload, cell.label, cell.error
            )
        })
    }

    fn grid(workloads: &[WorkloadId]) -> Vec<SweepCell> {
        use paragraph_core::WindowSize;
        let mut cells = Vec::new();
        for &id in workloads {
            cells.push(SweepCell::new(
                id,
                "dataflow",
                AnalysisConfig::dataflow_limit(),
            ));
            cells.push(SweepCell::new(
                id,
                "w64",
                AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(64)),
            ));
            cells.push(SweepCell::new(
                id,
                "renone",
                AnalysisConfig::dataflow_limit().with_renames(paragraph_core::RenameSet::none()),
            ));
        }
        cells
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        let study = temp_study("det");
        let cells = grid(&[
            WorkloadId::Xlisp,
            WorkloadId::Eqntott,
            WorkloadId::Matrix300,
        ]);
        let opts_seq = SweepOptions {
            jobs: 1,
            reuse_stages: false,
            ..SweepOptions::default()
        };
        let opts_par = SweepOptions {
            jobs: 8,
            reuse_stages: false,
            ..SweepOptions::default()
        };
        let sequential = run_sweep(&study, "t-det", &cells, &opts_seq);
        let parallel = run_sweep(&study, "t-det", &cells, &opts_par);
        assert_eq!(sequential.jobs, 1);
        for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
            let (a, b) = (ok(a), ok(b));
            assert_eq!(a.report_json, b.report_json, "{}@{}", a.workload, a.label);
            assert_eq!(a.profile, b.profile);
            let mut csv_a = Vec::new();
            let mut csv_b = Vec::new();
            a.profile.write_csv(&mut csv_a).unwrap();
            b.profile.write_csv(&mut csv_b).unwrap();
            assert_eq!(csv_a, csv_b);
        }
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn sweep_matches_direct_analysis() {
        let study = temp_study("direct");
        let cells = grid(&[WorkloadId::Xlisp]);
        let opts = SweepOptions {
            jobs: 2,
            reuse_stages: false,
            ..SweepOptions::default()
        };
        let outcome = run_sweep(&study, "t-direct", &cells, &opts);
        let (records, segments) = study.collect(WorkloadId::Xlisp).unwrap();
        for (cell, result) in cells.iter().zip(&outcome.cells) {
            let config = cell.config.clone().with_segments(segments);
            let direct = analyze_slice(&records, &config);
            assert_eq!(ok(result).report_json, direct.to_json());
        }
        assert_eq!(outcome.arena.misses, 1, "one workload, one decode");
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn stage_markers_resume_without_recomputation() {
        let study = temp_study("stage");
        let cells = grid(&[WorkloadId::Eqntott]);
        let opts = SweepOptions {
            jobs: 2,
            ..SweepOptions::default()
        };
        let fresh = run_sweep(&study, "t-stage", &cells, &opts);
        assert!(fresh.cells.iter().all(|c| !ok(c).from_stage));

        // Simulate an interrupted sweep: pre-store one cell's marker, then
        // re-run. The restored cell must be byte-identical and flagged.
        study
            .store_stage(
                "t-stage",
                &cells[0].stage_key(),
                &encode_marker(ok(&fresh.cells[0])),
            )
            .unwrap();
        let resumed = run_sweep(&study, "t-stage", &cells, &opts);
        assert!(ok(&resumed.cells[0]).from_stage);
        assert_eq!(resumed.cells[0].attempts, 0, "restored cells run nothing");
        assert!(!ok(&resumed.cells[1]).from_stage);
        for (a, b) in fresh.cells.iter().zip(&resumed.cells) {
            let (a, b) = (ok(a), ok(b));
            assert_eq!(a.report_json, b.report_json);
            assert_eq!(a.metrics.records, b.metrics.records);
            assert_eq!(a.profile, b.profile);
        }
        // A completed sweep clears its markers.
        assert!(study.load_stage("t-stage", &cells[0].stage_key()).is_none());
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn marker_round_trips_and_rejects_damage() {
        let study = temp_study("marker");
        let cells = grid(&[WorkloadId::Matrix300]);
        let opts = SweepOptions {
            jobs: 1,
            reuse_stages: false,
            ..SweepOptions::default()
        };
        let outcome = run_sweep(&study, "t-marker", &cells[..1], &opts);
        let first = ok(&outcome.cells[0]);
        let marker = encode_marker(first);
        let decoded = decode_marker(&cells[0], &marker).unwrap();
        assert_eq!(decoded.report_json, first.report_json);
        assert_eq!(decoded.profile, first.profile);
        assert_eq!(decoded.metrics, {
            let mut m = first.metrics;
            m.wall_ns = decoded.metrics.wall_ns;
            m
        });
        assert!(decoded.from_stage);

        assert!(decode_marker(&cells[0], "JUNK\n1 2 3").is_none());
        assert!(decode_marker(&cells[0], &marker.replace(MARKER_MAGIC, "PGSWEEP9")).is_none());
        let truncated = &marker[..marker.len() / 2];
        // Truncation lands either in the profile or the json; both reject
        // or round-trip to a prefix that fails validation.
        if let Some(bad) = decode_marker(&cells[0], truncated) {
            assert_ne!(bad.report_json, first.report_json);
        }
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn manifest_mentions_every_cell() {
        let study = temp_study("manifest");
        let cells = grid(&[WorkloadId::Xlisp]);
        let opts = SweepOptions {
            jobs: 3,
            reuse_stages: false,
            ..SweepOptions::default()
        };
        let outcome = run_sweep(&study, "t-manifest", &cells, &opts);
        let manifest = sweep_manifest_json("t-manifest", &outcome);
        assert!(manifest.contains("\"sweep\":\"t-manifest\""));
        assert!(manifest.contains("\"misses\":1"));
        assert!(manifest.contains("\"quarantined\":0"));
        for cell in &outcome.cells {
            assert!(manifest.contains(&format!("\"config\":\"{}\"", cell.label)));
            assert_eq!(cell.status, CellStatus::Ok);
            assert_eq!(cell.attempts, 1);
        }
        assert!(manifest.contains("\"status\":\"ok\""));
        assert!(manifest.contains("\"error\":null"));
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn quarantined_cell_leaves_siblings_byte_identical() {
        use crate::supervisor::FaultKind;
        let study = temp_study("quarantine");
        let cells = grid(&[WorkloadId::Xlisp, WorkloadId::Eqntott]);
        let opts = SweepOptions {
            jobs: 4,
            reuse_stages: false,
            retries: 1,
            retry_backoff_ms: 0,
            ..SweepOptions::default()
        };
        let clean = run_sweep_supervised(&study, "t-quar", &cells, &opts, None);
        assert_eq!(clean.quarantined(), 0);

        // Permanently fault one cell (always panics) and re-run.
        let fault = FaultSpec {
            workload: "xlisp".to_owned(),
            label: "w64".to_owned(),
            fails: u32::MAX,
            kind: FaultKind::Panic,
        };
        let faulted = run_sweep_supervised(&study, "t-quar", &cells, &opts, Some(&fault));
        assert_eq!(faulted.quarantined(), 1);
        for (a, b) in clean.cells.iter().zip(&faulted.cells) {
            if fault.targets(b.workload.name(), &b.label) {
                assert!(b.is_quarantined());
                assert_eq!(b.status, CellStatus::Quarantined);
                assert_eq!(b.attempts, opts.retries + 1, "retries are bounded");
                assert!(b.outcome.is_none());
                let err = b.error.as_deref().unwrap();
                assert!(
                    err.contains("injected"),
                    "error should carry the cause: {err}"
                );
            } else {
                assert_eq!(b.status, CellStatus::Ok);
                assert_eq!(ok(a).report_json, ok(b).report_json);
                assert_eq!(ok(a).profile, ok(b).profile);
            }
        }
        let manifest = sweep_manifest_json("t-quar", &faulted);
        assert!(manifest.contains("\"quarantined\":1"));
        assert!(manifest.contains("\"status\":\"quarantined\""));
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn transient_fault_retries_then_succeeds() {
        use crate::supervisor::FaultKind;
        let study = temp_study("retry");
        let cells = grid(&[WorkloadId::Matrix300]);
        let opts = SweepOptions {
            jobs: 2,
            reuse_stages: false,
            retries: 2,
            retry_backoff_ms: 0,
            ..SweepOptions::default()
        };
        let clean = run_sweep_supervised(&study, "t-retry", &cells, &opts, None);
        // Fault the first attempt only: the retry must succeed and produce
        // the exact same artifacts a fault-free run does.
        let fault = FaultSpec {
            workload: "matrix300".to_owned(),
            label: "dataflow".to_owned(),
            fails: 1,
            kind: FaultKind::Vm,
        };
        let retried = run_sweep_supervised(&study, "t-retry", &cells, &opts, Some(&fault));
        assert_eq!(retried.quarantined(), 0);
        let target = retried
            .cells
            .iter()
            .find(|c| fault.targets(c.workload.name(), &c.label))
            .unwrap();
        assert_eq!(target.status, CellStatus::Retried);
        assert_eq!(target.attempts, 2);
        assert!(target.error.is_none());
        for (a, b) in clean.cells.iter().zip(&retried.cells) {
            assert_eq!(ok(a).report_json, ok(b).report_json);
        }
        let manifest = sweep_manifest_json("t-retry", &retried);
        assert!(manifest.contains("\"status\":\"retried\""));
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn degraded_sweep_keeps_markers_so_reruns_only_recompute_failures() {
        use crate::supervisor::FaultKind;
        let study = temp_study("degraded");
        let cells = grid(&[WorkloadId::Xlisp]);
        let opts = SweepOptions {
            jobs: 2,
            reuse_stages: true,
            retries: 0,
            retry_backoff_ms: 0,
            ..SweepOptions::default()
        };
        let fault = FaultSpec {
            workload: "xlisp".to_owned(),
            label: "renone".to_owned(),
            fails: u32::MAX,
            kind: FaultKind::Decode,
        };
        let degraded = run_sweep_supervised(&study, "t-degraded", &cells, &opts, Some(&fault));
        assert_eq!(degraded.quarantined(), 1);
        // Healthy cells' markers survive a degraded sweep...
        assert!(study
            .load_stage("t-degraded", &cells[0].stage_key())
            .is_some());
        // ...so a healthy rerun restores them and recomputes only the
        // formerly quarantined cell, then clears the markers.
        let rerun = run_sweep_supervised(&study, "t-degraded", &cells, &opts, None);
        assert_eq!(rerun.quarantined(), 0);
        for cell in &rerun.cells {
            if fault.targets(cell.workload.name(), &cell.label) {
                assert!(!ok(cell).from_stage, "quarantined cell must recompute");
            } else {
                assert!(ok(cell).from_stage, "healthy cells must restore");
            }
        }
        assert!(study
            .load_stage("t-degraded", &cells[0].stage_key())
            .is_none());
        let _ = fs::remove_dir_all(study.out_dir());
    }

    #[test]
    fn zero_jobs_defaults_to_available_parallelism() {
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(16, 4), 4, "jobs are bounded by cells");
        assert_eq!(effective_jobs(3, 100), 3);
        assert_eq!(effective_jobs(0, 0), 1);
    }

    /// Best-of-`reps` wall-clock of the pre-engine path (every cell
    /// re-generating its workload's trace, strictly sequential) against
    /// `run_sweep` over the same cells, asserting report equality on every
    /// repetition. The two paths alternate and each keeps its minimum:
    /// single-shot timings on a shared box swing by 2x.
    struct SweepBench {
        before_ns: u64,
        after_ns: u64,
        jobs: usize,
        misses: u64,
        hits: u64,
    }

    impl SweepBench {
        fn speedup(&self) -> f64 {
            self.before_ns as f64 / self.after_ns.max(1) as f64
        }

        fn json(&self, grid: &str, cpus: usize) -> String {
            format!(
                concat!(
                    "{{\"bench\":\"sweep-decode-once\",\"grid\":\"{}\",\"cpus\":{},",
                    "\"before_ns\":{},\"after_ns\":{},\"speedup\":{:.2},",
                    "\"jobs\":{},\"arena_misses\":{},\"arena_hits\":{}}}"
                ),
                grid,
                cpus,
                self.before_ns,
                self.after_ns,
                self.speedup(),
                self.jobs,
                self.misses,
                self.hits,
            )
        }
    }

    fn measure_sweep(study: &Study, name: &str, cells: &[SweepCell], reps: usize) -> SweepBench {
        // The arena gets an unbounded budget: this measures decode-once
        // against re-decode, so the whole grid must stay resident (the
        // budget's eviction behavior is exercised by the arena tests).
        let opts = SweepOptions {
            jobs: crate::jobs_from_env(),
            arena_budget_bytes: usize::MAX,
            reuse_stages: false,
            ..SweepOptions::default()
        };
        let mut bench = SweepBench {
            before_ns: u64::MAX,
            after_ns: u64::MAX,
            jobs: 0,
            misses: 0,
            hits: 0,
        };
        for rep in 0..reps {
            // Before: the old drivers' shape — one trace generation per
            // cell, one cell at a time.
            let start = Instant::now();
            let mut before_reports = Vec::new();
            for cell in cells {
                let (records, segments) = study.collect(cell.workload).unwrap();
                let config = cell.config.clone().with_segments(segments);
                before_reports.push(analyze_slice(&records, &config).to_json());
            }
            let b = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);

            // After: decode-once arena + scheduler.
            let outcome = run_sweep(study, name, cells, &opts);
            for (old, new) in before_reports.iter().zip(&outcome.cells) {
                assert_eq!(old, &ok(new).report_json, "engine changed a report");
            }
            println!(
                "{name} rep {rep}: before {:.2}s, after {:.2}s",
                b as f64 / 1e9,
                outcome.wall_ns as f64 / 1e9,
            );
            bench.before_ns = bench.before_ns.min(b);
            bench.after_ns = bench.after_ns.min(outcome.wall_ns);
            bench.jobs = outcome.jobs;
            bench.misses = outcome.arena.misses;
            bench.hits = outcome.arena.hits;
        }
        bench
    }

    /// Measures the sweep engine against the pre-engine path on two grids:
    /// the acceptance grid (ten workloads × two configurations) and fig8's
    /// real shape (ten workloads × the 13-window ladder + unbounded).
    /// Ignored by default — it is a benchmark, not a correctness test; run
    /// with `cargo test --release -p paragraph-bench -- --ignored
    /// decode_once --nocapture` (PARAGRAPH_FUEL/SCALE/JOBS apply) and the
    /// JSON lines it prints are what `BENCH.sweep.json` records.
    #[test]
    #[ignore = "benchmark: run explicitly with --ignored --nocapture"]
    fn decode_once_speedup_on_ten_workload_grid() {
        use paragraph_core::WindowSize;
        let study = Study::from_env();
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

        let mut pair_cells = Vec::new();
        for id in WorkloadId::ALL {
            pair_cells.push(SweepCell::new(
                id,
                "dataflow",
                AnalysisConfig::dataflow_limit(),
            ));
            pair_cells.push(SweepCell::new(
                id,
                "w1024",
                AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(1024)),
            ));
        }
        let pair = measure_sweep(&study, "t-bench2", &pair_cells, 3);

        let mut ladder_cells = Vec::new();
        for id in WorkloadId::ALL {
            for w in [
                1usize, 2, 4, 8, 16, 32, 64, 128, 256, 1_024, 4_096, 16_384, 65_536,
            ] {
                ladder_cells.push(SweepCell::new(
                    id,
                    format!("w{w}"),
                    AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(w)),
                ));
            }
            ladder_cells.push(SweepCell::new(id, "full", AnalysisConfig::dataflow_limit()));
        }
        let ladder = measure_sweep(&study, "t-bench14", &ladder_cells, 2);

        // Print the rows and append them to the workspace perf trajectory;
        // `paragraph profile --bench-compare` diffs two such files. Append
        // is best-effort: a read-only checkout must not fail the benchmark.
        let bench_log = std::path::Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH.sweep.json"
        ));
        for row in [pair.json("10x2", cpus), ladder.json("10x14", cpus)] {
            println!("{row}");
            if let Err(e) = crate::append_bench_row(bench_log, &row) {
                eprintln!("bench log append failed: {e}");
            }
        }

        assert_eq!(pair.misses, 10, "each workload must decode exactly once");
        let pair_speedup = pair.speedup();
        let ladder_speedup = ladder.speedup();
        // With only two configurations per workload, decode-once alone is
        // bounded below 2x on one core — (2D + 2A) / (D + 2A) < 2 for any
        // analysis cost A > 0 — so the 2x acceptance bound on this grid is
        // a parallel-speedup claim; hold it wherever parallelism exists.
        assert!(
            pair_speedup > 1.0,
            "decode-once must beat the re-decode path, got {pair_speedup:.2}x"
        );
        if cpus >= 4 {
            assert!(
                pair_speedup >= 2.0,
                "expected >= 2x on the 10x2 grid with {cpus} cores, got {pair_speedup:.2}x"
            );
        }
        // fig8's own grid re-decodes 14x per workload without the arena;
        // decode-once must reclaim at least half that wall-clock even on a
        // single core.
        assert!(
            ladder_speedup >= 2.0,
            "expected >= 2x on the fig8-shaped grid, got {ladder_speedup:.2}x"
        );
    }
}

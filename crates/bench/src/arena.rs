//! Decode-once trace arena for multi-configuration sweeps.
//!
//! The paper's headline figures re-analyze the *same* execution trace under
//! many machine models. Generating (or decoding) a workload's trace is a
//! serial, allocation-heavy stage; analyzing it under one configuration is
//! an independent, read-only pass. The arena separates the two: each
//! workload's records are materialized exactly once into a shared immutable
//! allocation (`Arc<Vec<TraceRecord>>` — the generation buffer itself is
//! moved behind the `Arc`, never copied; an exact-size `Arc<[TraceRecord]>`
//! copy would re-touch every page of a multi-gigabyte sweep), and any
//! number of concurrent analyzer passes walk that one allocation.
//!
//! Residency is bounded by an LRU byte budget so a ten-workload sweep does
//! not need every trace in RAM at once. Eviction only drops the arena's own
//! reference — passes still holding an [`ArenaTrace`] keep the allocation
//! alive until they finish, so the budget is a steady-state target, not a
//! hard cap. An evicted workload that is requested again is re-generated;
//! the workloads are deterministic, so the recomputed trace is identical
//! and results never depend on eviction timing.

use crate::supervisor::CellError;
use crate::Study;
use paragraph_trace::{SegmentMap, TraceRecord};
use paragraph_workloads::WorkloadId;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Default LRU byte budget: 2 GiB comfortably holds the full-scale paper
/// workload set while still exercising eviction on constrained boxes.
pub const DEFAULT_BUDGET_BYTES: usize = 2 << 30;

/// One workload's resident trace. Cloning is cheap: clones share the same
/// record allocation.
#[derive(Clone)]
pub struct ArenaTrace {
    /// The decoded records; derefs to `&[TraceRecord]` for analysis.
    pub records: Arc<Vec<TraceRecord>>,
    /// Segment map the trace was generated under (configs need it for
    /// stack/data rename decisions).
    pub segments: SegmentMap,
}

impl ArenaTrace {
    /// Estimated bytes this trace keeps resident.
    pub fn resident_bytes(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<TraceRecord>()
    }
}

/// Arena traffic counters, reported in sweep manifests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served from a resident trace (including waits on a decode
    /// already in flight — the decode still happened once).
    pub hits: u64,
    /// Requests that had to generate the trace.
    pub misses: u64,
    /// Resident traces dropped to respect the byte budget.
    pub evictions: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
}

enum Slot {
    /// A thread is generating this trace; waiters sleep on the condvar.
    Loading,
    Ready {
        trace: ArenaTrace,
        last_use: u64,
    },
}

struct ArenaState {
    slots: HashMap<WorkloadId, Slot>,
    clock: u64,
    resident_bytes: usize,
    stats: ArenaStats,
}

/// Shared, thread-safe trace store keyed by workload. One arena serves one
/// [`Study`] (its fuel/scale settings determine the traces), which callers
/// pass to [`TraceArena::get`].
pub struct TraceArena {
    budget_bytes: usize,
    state: Mutex<ArenaState>,
    ready: Condvar,
}

impl TraceArena {
    /// Creates an arena with an explicit LRU byte budget. A budget smaller
    /// than a single trace still admits that trace (the budget bounds
    /// *additional* residency, never forward progress).
    pub fn new(budget_bytes: usize) -> TraceArena {
        TraceArena {
            budget_bytes: budget_bytes.max(1),
            state: Mutex::new(ArenaState {
                slots: HashMap::new(),
                clock: 0,
                resident_bytes: 0,
                stats: ArenaStats::default(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Creates an arena with the budget from `PARAGRAPH_ARENA_BYTES`
    /// (underscore separators allowed), defaulting to
    /// [`DEFAULT_BUDGET_BYTES`].
    pub fn from_env() -> TraceArena {
        let budget = std::env::var("PARAGRAPH_ARENA_BYTES")
            .ok()
            .and_then(|v| v.replace('_', "").parse().ok())
            .unwrap_or(DEFAULT_BUDGET_BYTES);
        TraceArena::new(budget)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ArenaState> {
        // A poisoned lock means another worker panicked mid-update; the
        // state itself is only ever mutated to a consistent shape under
        // the lock, so continuing is safe (the panic is contained at the
        // scheduler's catch_unwind boundary and supervised).
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns `id`'s trace, generating it exactly once no matter how many
    /// threads ask concurrently: the first requester claims a loading slot
    /// and generates outside the lock; the rest sleep until it is ready.
    ///
    /// # Errors
    ///
    /// Propagates [`Study::collect`]'s [`CellError`] (a VM fault). A failed
    /// or panicking load releases its claim, so waiting threads wake and
    /// retry the generation themselves rather than deadlock.
    pub fn get(&self, study: &Study, id: WorkloadId) -> Result<ArenaTrace, CellError> {
        self.get_with(id, || study.collect(id))
    }

    /// [`TraceArena::get`] with an explicit loader, so embedders (and the
    /// fault-recovery tests) control how the trace is produced. The loader
    /// runs outside the arena lock; only the thread holding the loading
    /// claim invokes it.
    ///
    /// # Errors
    ///
    /// Propagates the loader's error; the loading claim is released first,
    /// so a waiting thread retries with its own loader.
    pub fn get_with(
        &self,
        id: WorkloadId,
        loader: impl FnOnce() -> Result<(Vec<TraceRecord>, SegmentMap), CellError>,
    ) -> Result<ArenaTrace, CellError> {
        let mut state = self.lock();
        loop {
            let ArenaState {
                slots,
                clock,
                stats,
                ..
            } = &mut *state;
            match slots.get_mut(&id) {
                Some(Slot::Ready { trace, last_use }) => {
                    *clock += 1;
                    *last_use = *clock;
                    stats.hits += 1;
                    return Ok(trace.clone());
                }
                Some(Slot::Loading) => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    slots.insert(id, Slot::Loading);
                    stats.misses += 1;
                    break;
                }
            }
        }
        drop(state);

        // Generate outside the lock; the guard clears the loading claim if
        // the loader fails or panics, so waiters wake and retry.
        let mut guard = LoadGuard {
            arena: self,
            id,
            armed: true,
        };
        let (records, segments) = loader()?;
        let trace = ArenaTrace {
            records: Arc::new(records),
            segments,
        };
        self.install(id, trace.clone());
        guard.armed = false;
        Ok(trace)
    }

    fn install(&self, id: WorkloadId, trace: ArenaTrace) {
        let bytes = trace.resident_bytes();
        let mut state = self.lock();
        state.clock += 1;
        let now = state.clock;
        state.slots.insert(
            id,
            Slot::Ready {
                trace,
                last_use: now,
            },
        );
        state.resident_bytes = state.resident_bytes.saturating_add(bytes);
        let peak = state.resident_bytes as u64;
        state.stats.peak_resident_bytes = state.stats.peak_resident_bytes.max(peak);
        self.evict_to_budget(&mut state, id);
        drop(state);
        self.ready.notify_all();
    }

    /// Drops least-recently-used resident traces until the budget holds.
    /// The just-installed `keep` entry is never evicted, so one oversized
    /// trace still makes progress.
    fn evict_to_budget(&self, state: &mut ArenaState, keep: WorkloadId) {
        while state.resident_bytes > self.budget_bytes {
            let victim = state
                .slots
                .iter()
                .filter_map(|(&id, slot)| match slot {
                    Slot::Ready { trace, last_use } if id != keep => {
                        Some((*last_use, id, trace.resident_bytes()))
                    }
                    _ => None,
                })
                .min();
            let Some((_, id, bytes)) = victim else {
                break;
            };
            state.slots.remove(&id);
            state.resident_bytes = state.resident_bytes.saturating_sub(bytes);
            state.stats.evictions += 1;
        }
    }

    /// A snapshot of the arena's traffic counters.
    pub fn stats(&self) -> ArenaStats {
        self.lock().stats
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.lock().resident_bytes
    }
}

struct LoadGuard<'a> {
    arena: &'a TraceArena,
    id: WorkloadId,
    armed: bool,
}

impl Drop for LoadGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = self.arena.lock();
            if matches!(state.slots.get(&self.id), Some(Slot::Loading)) {
                state.slots.remove(&self.id);
            }
            drop(state);
            self.arena.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tiny_study() -> Study {
        Study::new(50_000, 2, PathBuf::from("results"))
    }

    #[test]
    fn decodes_each_workload_exactly_once() {
        let study = tiny_study();
        let arena = TraceArena::new(usize::MAX);
        let a = arena.get(&study, WorkloadId::Xlisp).unwrap();
        let b = arena.get(&study, WorkloadId::Xlisp).unwrap();
        assert!(Arc::ptr_eq(&a.records, &b.records), "must share one decode");
        let stats = arena.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn concurrent_requests_share_one_decode() {
        let study = tiny_study();
        let arena = TraceArena::new(usize::MAX);
        let traces: Vec<ArenaTrace> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| arena.get(&study, WorkloadId::Eqntott)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(trace) => trace.unwrap(),
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for pair in traces.windows(2) {
            assert!(Arc::ptr_eq(&pair[0].records, &pair[1].records));
        }
        assert_eq!(arena.stats().misses, 1, "decode must happen exactly once");
    }

    #[test]
    fn lru_budget_evicts_cold_traces_but_keeps_results_correct() {
        let study = tiny_study();
        // Budget of one byte: every new trace evicts the previous one.
        let arena = TraceArena::new(1);
        let first = arena.get(&study, WorkloadId::Xlisp).unwrap();
        let _second = arena.get(&study, WorkloadId::Eqntott).unwrap();
        assert!(arena.stats().evictions >= 1);
        // The evicted handle stays valid (Arc keeps the data alive)...
        assert!(!first.records.is_empty());
        // ...and a re-request regenerates identical records.
        let again = arena.get(&study, WorkloadId::Xlisp).unwrap();
        assert_eq!(&again.records[..], &first.records[..]);
        assert!(!Arc::ptr_eq(&again.records, &first.records));
    }

    #[test]
    fn resident_bytes_track_the_store() {
        let study = tiny_study();
        let arena = TraceArena::new(usize::MAX);
        assert_eq!(arena.resident_bytes(), 0);
        let t = arena.get(&study, WorkloadId::Xlisp).unwrap();
        assert_eq!(arena.resident_bytes(), t.resident_bytes());
        assert_eq!(arena.stats().peak_resident_bytes, t.resident_bytes() as u64);
    }

    fn tiny_trace() -> (Vec<paragraph_trace::TraceRecord>, SegmentMap) {
        (
            paragraph_trace::synthetic::random_trace(50, 1),
            SegmentMap::new(1 << 20, 1 << 24),
        )
    }

    #[test]
    fn failing_loader_releases_the_claim_for_the_next_caller() {
        let arena = TraceArena::new(usize::MAX);
        let err = arena.get_with(WorkloadId::Xlisp, || {
            Err(CellError::Vm("injected".to_owned()))
        });
        assert!(matches!(err, Err(CellError::Vm(_))));
        // The failed claim must be gone: a well-behaved loader succeeds.
        let trace = arena
            .get_with(WorkloadId::Xlisp, || Ok(tiny_trace()))
            .unwrap();
        assert_eq!(trace.records.len(), 50);
        let stats = arena.stats();
        assert_eq!(stats.misses, 2, "both claims count as misses");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn panicking_loader_wakes_waiters_who_retry_and_succeed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arena = TraceArena::new(usize::MAX);
        let attempts = AtomicUsize::new(0);

        // Four threads race for the same workload. Whichever claims the
        // loading slot first panics mid-generation (attempt 0); the claim
        // must be released so a waiter can claim, regenerate, and feed the
        // rest. The poisoned-lock path is exercised too: the panic unwinds
        // while other threads are blocked on the arena's mutex/condvar.
        let outcomes: Vec<Result<ArenaTrace, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let arena = &arena;
                    let attempts = &attempts;
                    scope.spawn(move || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            arena.get_with(WorkloadId::Eqntott, || {
                                if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                                    panic!("injected generator panic");
                                }
                                Ok(tiny_trace())
                            })
                        }))
                        .map_err(|_| "panicked".to_owned())
                        .and_then(|r| r.map_err(|e| e.to_string()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("join failed".to_owned())))
                .collect()
        });

        let ok: Vec<&ArenaTrace> = outcomes.iter().filter_map(|r| r.as_ref().ok()).collect();
        let panicked = outcomes.iter().filter(|r| r.is_err()).count();
        assert_eq!(panicked, 1, "exactly the first claimer panics");
        let errors: Vec<&String> = outcomes.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(ok.len(), 3, "every waiter must recover: {errors:?}");
        for pair in ok.windows(2) {
            assert!(
                Arc::ptr_eq(&pair[0].records, &pair[1].records),
                "survivors share the retried decode"
            );
        }
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "panic, then one retry");
        let stats = arena.stats();
        assert_eq!(stats.misses, 2, "failed claim + successful retry");
        // A later request is a plain hit on the recovered slot.
        let again = arena
            .get_with(WorkloadId::Eqntott, || Ok(tiny_trace()))
            .unwrap();
        assert!(Arc::ptr_eq(&again.records, &ok[0].records));
    }
}

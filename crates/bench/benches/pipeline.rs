//! Criterion benchmarks of the full pipeline: assembling workloads,
//! executing them on the VM (the Pixie role), the binary trace format, and
//! end-to-end trace-and-analyze runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paragraph_core::{AnalysisConfig, LiveWell};
use paragraph_trace::binary::{TraceReader, TraceWriter};
use paragraph_trace::SegmentMap;
use paragraph_workloads::{Workload, WorkloadId};

fn assemble_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("assemble");
    for id in [WorkloadId::Matrix300, WorkloadId::Fpppp, WorkloadId::Xlisp] {
        let source = Workload::new(id).with_size(8).source();
        group.throughput(Throughput::Bytes(source.len() as u64));
        group.bench_function(id.name(), |b| {
            b.iter(|| paragraph_asm::assemble(&source).unwrap());
        });
    }
    group.finish();
}

fn vm_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm");
    group.sample_size(20);
    for id in [WorkloadId::Eqntott, WorkloadId::Doduc] {
        let workload = Workload::new(id).with_size(8);
        let program = workload.program().unwrap();
        // Measure raw interpretation speed (instructions/second).
        let mut probe = paragraph_vm::Vm::new(program.clone());
        let executed = probe.run(10_000_000).unwrap().executed();
        group.throughput(Throughput::Elements(executed));
        group.bench_function(format!("execute_{id}"), |b| {
            b.iter(|| {
                let mut vm = paragraph_vm::Vm::new(program.clone());
                vm.run(10_000_000).unwrap().executed()
            });
        });
    }
    group.finish();
}

fn trace_format(c: &mut Criterion) {
    let (records, segments) = Workload::new(WorkloadId::Cc1)
        .with_size(4)
        .collect_trace(10_000_000)
        .unwrap();
    let mut group = c.benchmark_group("trace_format");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(records.len() * 8);
            let mut writer = TraceWriter::new(&mut buf, segments).unwrap();
            for r in &records {
                writer.write_record(r).unwrap();
            }
            writer.finish().unwrap()
        });
    });
    let mut encoded = Vec::new();
    let mut writer = TraceWriter::new(&mut encoded, SegmentMap::all_data()).unwrap();
    for r in &records {
        writer.write_record(r).unwrap();
    }
    writer.finish().unwrap();
    group.bench_function("decode", |b| {
        b.iter(|| {
            TraceReader::new(encoded.as_slice())
                .unwrap()
                .map(|r| r.unwrap())
                .count()
        });
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let workload = Workload::new(WorkloadId::Espresso).with_size(8);
    let program = workload.program().unwrap();
    group.bench_function("trace_and_analyze_espresso", |b| {
        b.iter(|| {
            let mut vm = paragraph_vm::Vm::new(program.clone());
            let config = AnalysisConfig::dataflow_limit().with_segments(vm.segment_map());
            let mut analyzer = LiveWell::new(config);
            vm.run_traced(10_000_000, |r| {
                analyzer.process(r);
            })
            .unwrap();
            analyzer.finish().available_parallelism()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    assemble_workloads,
    vm_execution,
    trace_format,
    end_to_end
);
criterion_main!(benches);

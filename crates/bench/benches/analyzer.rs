//! Criterion benchmarks of the analyzer itself: live-well throughput under
//! the paper's switch settings, window overhead, profile coarsening, and
//! the explicit-graph builder. These measure the toolkit (the paper quotes
//! ~10 hours per 100M-instruction analysis on a DECstation 3100; this is
//! the modern equivalent number).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paragraph_core::branch::{BranchPolicy, PredictorKind};
use paragraph_core::{
    analyze_refs, AnalysisConfig, Ddg, MemoryModel, RenameSet, SyscallPolicy, WindowSize,
};
use paragraph_trace::synthetic;

fn livewell_throughput(c: &mut Criterion) {
    let trace = synthetic::random_trace(100_000, 42);
    let mut group = c.benchmark_group("livewell");
    group.throughput(Throughput::Elements(trace.len() as u64));
    let configs = [
        ("dataflow_limit", AnalysisConfig::dataflow_limit()),
        (
            "no_renaming",
            AnalysisConfig::dataflow_limit().with_renames(RenameSet::none()),
        ),
        (
            "window_1k",
            AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(1024)),
        ),
        (
            "optimistic_syscalls",
            AnalysisConfig::dataflow_limit().with_syscall_policy(SyscallPolicy::Optimistic),
        ),
        (
            "gshare_predictor",
            AnalysisConfig::dataflow_limit().with_branch_policy(BranchPolicy::Predict(
                PredictorKind::Gshare { index_bits: 12 },
            )),
        ),
        (
            "issue_limit_8",
            AnalysisConfig::dataflow_limit().with_issue_limit(8),
        ),
        (
            "no_disambiguation",
            AnalysisConfig::dataflow_limit().with_memory_model(MemoryModel::NoDisambiguation),
        ),
        (
            "value_stats",
            AnalysisConfig::dataflow_limit().with_value_stats(true),
        ),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| analyze_refs(&trace, &config));
        });
    }
    group.finish();
}

fn livewell_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("livewell_scaling");
    for n in [10_000usize, 100_000, 1_000_000] {
        let trace = synthetic::random_trace(n, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, trace| {
            b.iter(|| analyze_refs(trace, &AnalysisConfig::dataflow_limit()));
        });
    }
    group.finish();
}

fn explicit_ddg_build(c: &mut Criterion) {
    let trace = synthetic::random_trace(50_000, 3);
    let mut group = c.benchmark_group("ddg");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("build_explicit_graph", |b| {
        b.iter(|| Ddg::from_records(&trace, &AnalysisConfig::dataflow_limit()));
    });
    let ddg = Ddg::from_records(&trace, &AnalysisConfig::dataflow_limit());
    group.bench_function("critical_path_witness", |b| {
        b.iter(|| ddg.critical_path());
    });
    group.bench_function("schedule_4_units", |b| {
        b.iter(|| {
            paragraph_core::schedule::schedule(
                &ddg,
                paragraph_core::schedule::ResourceModel::units(4),
                &paragraph_core::LatencyModel::paper(),
            )
        });
    });
    group.finish();
}

fn profile_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile");
    group.bench_function("record_1m_levels_with_coarsening", |b| {
        b.iter(|| {
            let mut p = paragraph_core::ParallelismProfile::new(4096);
            for level in 0..1_000_000u64 {
                p.record(level);
            }
            p.total_ops()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    livewell_throughput,
    livewell_scaling,
    explicit_ddg_build,
    profile_recording
);
criterion_main!(benches);

//! Minimal shutdown-signal notification.
//!
//! A deliberately tiny stand-in for `signal-hook`, following the vendored
//! `mmap-lite` precedent: on unix the implementation calls `signal(2)`
//! directly through an `extern "C"` declaration (std already links libc,
//! so no crate dependency is needed) to route `SIGTERM` and `SIGINT` into
//! a process-global atomic flag. Elsewhere installation reports `false`
//! and the flag can only be raised programmatically.
//!
//! The handler body is strictly async-signal-safe: two relaxed atomic
//! stores, nothing else — no allocation, no locks, no I/O. Consumers poll
//! [`shutdown_requested`] from an ordinary loop (the serve accept loop
//! polls between non-blocking accepts) rather than being interrupted.
//!
//! [`request_shutdown`] raises the same flag from regular code, so a
//! graceful-drain endpoint, a test, or a non-unix build can trigger the
//! exact drain path an operator signal would.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

/// `SIGINT`'s number on every platform this crate supports.
pub const SIGINT: i32 = 2;
/// `SIGTERM`'s number on every platform this crate supports.
pub const SIGTERM: i32 = 15;

/// Raised by the signal handler (or [`request_shutdown`]); never lowered.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// The signal number that raised the flag, 0 when raised programmatically.
static SIGNAL: AtomicI32 = AtomicI32::new(0);

#[cfg(unix)]
mod sys {
    use std::ffi::c_int;

    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler)`. The
        /// handler is passed and returned as a plain address; `SIG_ERR`
        /// is `(sighandler_t)-1`, i.e. `usize::MAX`.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    /// The actual handler: record which signal fired, raise the flag.
    /// Both stores are async-signal-safe.
    extern "C" fn on_signal(signum: c_int) {
        super::SIGNAL.store(signum, std::sync::atomic::Ordering::Relaxed);
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Installs [`on_signal`] for `signum`; `false` if the kernel refused.
    pub fn install(signum: c_int) -> bool {
        // SAFETY: `on_signal` is an `extern "C" fn(c_int)` — exactly the
        // shape `signal(2)` expects — and its body is async-signal-safe.
        let previous = unsafe { signal(signum, on_signal as *const () as usize) };
        previous != usize::MAX
    }
}

/// Routes `SIGTERM` and `SIGINT` into the shutdown flag. Returns whether
/// both handlers were installed; on non-unix targets this is `false` and
/// only [`request_shutdown`] can raise the flag. Installing twice is
/// harmless (the second install replaces the handler with itself).
pub fn install_shutdown_handlers() -> bool {
    #[cfg(unix)]
    {
        let term = sys::install(SIGTERM);
        let int = sys::install(SIGINT);
        term && int
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Whether a shutdown has been requested — by a delivered `SIGTERM`/
/// `SIGINT` or by [`request_shutdown`]. Once `true`, stays `true` for the
/// life of the process.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Raises the shutdown flag from ordinary code: the graceful-drain
/// endpoint and tests use this to trigger the exact path a signal would.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// The signal number that raised the flag, or `None` before any shutdown
/// request (and `Some(0)` is never returned: a programmatic request
/// reports `None` for the signal while [`shutdown_requested`] is `true`).
pub fn shutdown_signal() -> Option<i32> {
    match SIGNAL.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The flag is process-global and latches, so everything observable is
    // exercised in one test to stay order-independent under the parallel
    // test harness.
    #[test]
    fn programmatic_request_latches_the_flag() {
        #[cfg(unix)]
        assert!(install_shutdown_handlers(), "signal(2) refused a handler");
        request_shutdown();
        assert!(shutdown_requested());
        // A programmatic request records no signal number.
        assert!(shutdown_signal().is_none() || shutdown_signal() == Some(SIGTERM));
        // Latched: still requested on a second look.
        assert!(shutdown_requested());
    }
}

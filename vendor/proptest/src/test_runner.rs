//! Test configuration and the deterministic generator behind the strategies.

/// Per-test configuration (the `cases` subset of upstream's struct).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic random source used to generate test cases.
///
/// Seeded from the test's full module path so every test sees a stable but
/// distinct stream across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, then avalanche once so similar names
        // diverge immediately.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng { state: h };
        let _ = rng.next_u64();
        rng
    }

    /// Returns the next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a1 = TestRng::for_test("a");
        let mut a2 = TestRng::for_test("a");
        let mut b = TestRng::for_test("b");
        let xs: Vec<u64> = (0..4).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}

//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of a type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces one value per call.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Generates a value, then generates from the strategy it maps to.
    fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, map }
    }

    /// Rejects generated values failing `predicate`, retrying with fresh
    /// values (upstream rejects whole cases instead; the effect is the
    /// same for the filters used here).
    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            predicate,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.map)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.source.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// An arbitrary value of `T` (edge cases mixed with uniform bits).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8: an edge case; otherwise uniform bits.
                if rng.below(8) == 0 {
                    // Near-extreme edges (exact MIN is measure-zero under
                    // upstream's uniform strategy, and some consumers
                    // format values as `-(magnitude)` literals that cannot
                    // express it).
                    match rng.below(5) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN.wrapping_add(1),
                        3 => 1 as $t,
                        _ => (0 as $t).wrapping_sub(1),
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_arbitrary {
    ($($t:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8: a special value (as upstream's default float
                // strategy includes infinities and NaN); otherwise a finite
                // value spanning many magnitudes.
                if rng.below(8) == 0 {
                    match rng.below(8) {
                        0 => 0.0,
                        1 => -0.0,
                        2 => 1.0,
                        3 => -1.0,
                        4 => $t::MAX,
                        5 => $t::MIN_POSITIVE,
                        6 => $t::INFINITY,
                        _ => $t::NAN,
                    }
                } else {
                    let mantissa = (rng.next_u64() >> 11) as $t
                        / (1u64 << 53) as $t * 2.0 - 1.0;
                    let exp = rng.below(61) as i32 - 30;
                    let scaled = mantissa * (2.0 as $t).powi(exp);
                    if scaled.is_finite() { scaled } else { mantissa }
                }
            }
        }
    )*};
}

float_arbitrary!(f32, f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span + 1)
                };
                (lo as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A `Vec` of strategies generates element-wise (used by
/// `prop_flat_map` closures that build one strategy per slot).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

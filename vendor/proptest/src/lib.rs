//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access and no registry cache, so the
//! real `proptest` cannot be fetched. This vendored crate implements the
//! subset of the API used by this workspace's property tests: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! range and tuple and `Vec` strategies, [`strategy::Just`], `any::<T>()`,
//! `collection::vec`, `prop_oneof!`, the `proptest!` test macro, and the
//! `prop_assert*` assertion macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed, and there is **no shrinking** — a failing case reports the
//! panic from the offending input directly. `proptest-regressions` files are
//! ignored.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in any::<i64>(), b in any::<i64>()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
    )*};
}

/// Picks one of several strategies uniformly at random per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        ::std::assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        ::std::assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        ::std::assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        ::std::assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        ::std::assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        ::std::assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let strat = (
            1u8..5,
            crate::collection::vec(0i64..=3, 2..=4),
            any::<bool>(),
        );
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..200 {
            let (a, v, _b) = strat.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (0..=3).contains(x)));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let strat = (0u64..10)
            .prop_filter("nonzero", |&x| x != 0)
            .prop_map(|x| x * 2)
            .prop_flat_map(|x| crate::collection::vec(crate::strategy::Just(x), 1..3));
        let mut rng = TestRng::for_test("compose");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty());
            assert!(v.iter().all(|&x| x != 0 && x % 2 == 0));
        }
    }

    #[test]
    fn oneof_covers_all_branches() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_of_strategies_is_a_strategy() {
        let strat: Vec<_> = (0..5u64).map(crate::strategy::Just).collect();
        let mut rng = TestRng::for_test("vecstrat");
        assert_eq!(strat.generate(&mut rng), vec![0, 1, 2, 3, 4]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in any::<i64>(), b in 1i64..100) {
            prop_assert!(b >= 1);
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
            prop_assert_ne!(b, 0);
        }
    }
}

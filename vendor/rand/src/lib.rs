//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This vendored crate implements exactly the
//! subset of the 0.8 API the workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range`, and `Rng::gen_bool` — with
//! a deterministic xoshiro-style generator. Streams differ from upstream
//! `rand`, but every consumer in this workspace only requires within-run
//! determinism (the same seed always produces the same sequence).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `lo..hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform sample from `lo..=hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
///
/// A single blanket impl per range shape (mirroring upstream) so type
/// inference can flow the element type out of `gen_range` calls.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // Width as u64 (two's-complement subtraction is width-exact
                // even for signed types and never overflows in u64).
                let span = (hi as u64).wrapping_sub(lo as u64);
                (lo as u64).wrapping_add(rng.next_u64() % span) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64);
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                (lo as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// The generators themselves.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ core).
    ///
    /// Not the same stream as upstream `rand`'s `SmallRng`; callers in this
    /// workspace rely only on seed-determinism, not on a particular stream.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.gen_range(i64::MIN..i64::MAX);
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
    }
}

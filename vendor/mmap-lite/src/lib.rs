//! Minimal read-only file memory mapping.
//!
//! A deliberately tiny stand-in for `memmap2`: map a whole file read-only,
//! expose it as `&[u8]`, unmap on drop. On unix the implementation calls
//! `mmap(2)`/`munmap(2)` directly through `extern "C"` declarations (std
//! already links libc, so no crate dependency is needed); elsewhere it
//! degrades to reading the file into an owned buffer, which keeps every
//! caller portable at the cost of the copy the unix path avoids.
//!
//! Safety model: the map is `PROT_READ`/`MAP_PRIVATE`, so the kernel never
//! writes through it and this process cannot either. As with every file
//! mapping, truncating the file while mapped can turn reads into `SIGBUS`;
//! callers that accept untrusted *writable* files should prefer a buffered
//! read. Trace files here are written once and then read, so the mapping
//! is stable in practice.

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An active `mmap(2)` region; unmapped on drop.
    pub struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // The region is immutable for its whole lifetime (PROT_READ private
    // mapping owned by this struct), so sharing it across threads is safe.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn new(file: &File, len: usize) -> io::Result<Map> {
            // POSIX rejects zero-length mappings; the caller handles the
            // empty-file case with an empty slice instead.
            debug_assert!(len > 0);
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void*)-1.
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // Failure here is unrecoverable and harmless to ignore: the
            // address range simply stays reserved until process exit.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

enum Backing {
    #[cfg(unix)]
    Mapped(sys::Map),
    Owned(Vec<u8>),
}

/// A read-only view of an entire file.
pub struct Mmap {
    backing: Backing,
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Propagates metadata or `mmap(2)` failures (e.g. mapping a pipe or a
    /// file larger than the address space).
    pub fn map(file: &File) -> io::Result<Mmap> {
        let meta = file.metadata()?;
        let len = usize::try_from(meta.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Owned(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            Ok(Mmap {
                backing: Backing::Mapped(sys::Map::new(file, len)?),
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut bytes = Vec::with_capacity(len);
            let mut file = file;
            file.read_to_end(&mut bytes)?;
            Ok(Mmap {
                backing: Backing::Owned(bytes),
            })
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(map) => map.as_slice(),
            Backing::Owned(bytes) => bytes,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mmap-lite-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert!(map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn map_is_shareable_across_threads() {
        let path = temp_path("threads");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(b"shared bytes")
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = std::sync::Arc::new(Mmap::map(&file).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let map = std::sync::Arc::clone(&map);
                std::thread::spawn(move || assert_eq!(&map[..], b"shared bytes"))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}

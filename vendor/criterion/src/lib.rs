//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no network access and no registry cache, so the
//! real `criterion` cannot be fetched. This vendored crate implements the
//! subset of the 0.5 API the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! fixed-duration timing loop and plain-text output (no statistics, plots,
//! or baselines).

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier with an optional parameter component.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark.
pub struct Bencher {
    /// Best observed time per iteration, if any iterations ran.
    best: Option<Duration>,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            best: None,
            iters: 0,
            budget,
        }
    }

    /// Runs `routine` repeatedly within the time budget, recording the best
    /// per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup iteration, then measure until the budget runs out
        // (always at least one measured iteration).
        std_black_box(routine());
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            std_black_box(routine());
            let elapsed = start.elapsed();
            self.iters += 1;
            if self.best.is_none_or(|b| elapsed < b) {
                self.best = Some(elapsed);
            }
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let Some(best) = bencher.best else {
        println!("{id:<48} (no iterations)");
        return;
    };
    let per_iter = best.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!(
        "{id:<48} {:>12.3?} /iter  ({} iters){rate}",
        best, bencher.iters
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in is time-budgeted, so
    /// the sample count only nudges the budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.budget = Duration::from_millis((n as u64).clamp(10, 100));
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget.min(Duration::from_millis(250));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.budget);
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            budget: Duration::from_millis(50),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(Duration::from_millis(50));
        routine(&mut bencher);
        report(&id.to_string(), &bencher, None);
        self
    }
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(64));
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
